//! One-pass multi-configuration simulation, policy-generic.
//!
//! A *slice* is a set of configurations sharing demand fetch,
//! write-through accounting, power-of-two set counts and one replacement
//! policy — net size, block size, sub-block size, word size and
//! associativity may all differ per configuration. For such a slice a
//! single pass over a trace yields every configuration's metrics,
//! bit-identical to running [`simulate`](crate::simulate) once per
//! configuration. Three engines implement the pass, one per policy the
//! direct simulator knows:
//!
//! * [`AllSizesLruEngine`] (`lru` module) — the Mattson-style
//!   stack-simulation engine, permutation-packed recency per set.
//! * [`AllSizesFifoEngine`] (`fifo` module) — fill-order queues; FIFO
//!   has no inclusion property across associativities (CIPARSim's
//!   intersection property degenerates to exact class sharing), but the
//!   residency-class structure still collapses a whole grid into one
//!   pass.
//! * [`AllSizesRandomEngine`] (`random` module) — deterministic seeded
//!   replication of the direct simulator's per-cache RNG, one generator
//!   per residency class.
//!
//! All three sit behind the object-safe [`SliceEngine`] trait, and
//! [`ENGINE_REGISTRY`] maps a [`EngineKind`] to its builder — the seam
//! where future organisations (victim caches, way prediction) plug in
//! without touching the planner. [`simulate_many`] /
//! [`simulate_many_pair`] pick the engine from the slice's policy, so
//! callers never name a concrete engine type.
//!
//! The machinery shared by the engines lives here: the deduplicated
//! **residency class** ([`ClassState`] — configurations with equal block
//! size, set count and associativity make identical residency and
//! victim decisions under LRU *and* FIFO, and share one RNG draw
//! sequence under Random, so they share block-level state), the
//! shape-specialised reference loops ([`SpecCtx`], const-generic over
//! way count and a `FIFO` flag so hit promotion compiles out), and the
//! flat per-configuration counter bank from which full [`Metrics`] are
//! reconstructed exactly (under demand fetch + write-through every
//! derived counter is a product of the counted/write misses and
//! eviction counts).
//!
//! Sub-block bitmasks are kept **per configuration** for each resident
//! way, because evictions (which clear them) happen at different times
//! for different cache sizes. Under demand fetch a sub-block is valid
//! exactly when it has been referenced, so one mask word per (way,
//! configuration) serves as both the valid and the referenced set.
//! Empty ways hold a sentinel block number (`u64::MAX`, which no real
//! block can equal once blocks span at least two bytes), so sets are
//! always structurally full and the insert path is one unified
//! shift-and-fill with eviction statistics gated on the victim being
//! real.
//!
//! What no engine expresses (callers fall back to [`simulate`]): the
//! prefetch and load-forward fetch policies (fill width depends on
//! per-size valid bits in ways that break the shared-pass structure),
//! copy-back write accounting (write-back bytes depend on per-size
//! dirty state at eviction), and geometries whose set count is not a
//! power of two (bit-selection needs one). The equivalence of every
//! engine to the direct simulator is enforced by property tests in
//! `tests/multisim_equiv.rs` and `tests/policy_equiv.rs`.
//!
//! [`simulate`]: crate::simulate

use std::error::Error;
use std::fmt;

use occache_trace::{AccessKind, MemRef};

use crate::config::{CacheConfig, FetchPolicy, ReplacementPolicy, WritePolicy};
use crate::metrics::{EngineCounters, Metrics};

mod fifo;
mod lru;
mod random;

pub use fifo::AllSizesFifoEngine;
pub use lru::AllSizesLruEngine;
pub use random::AllSizesRandomEngine;

/// Maximum configurations one engine instance simulates per pass.
///
/// Deduplicated residency classes make the residency cost per pass
/// depend on the distinct (block size, set count, associativity)
/// triples, not the slice width, so wide slices amortise the probes —
/// and the single pass over the trace — across more configurations
/// almost for free. The width is still bounded so the per-configuration
/// counter bank stays a few cache lines; planners chunk larger grids
/// into runs of at most this many.
pub const MAX_MULTISIM_CONFIGS: usize = 64;

/// Why a configuration (or a slice of them) cannot run on the one-pass
/// engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiSimError {
    /// No configurations were given.
    NoConfigs,
    /// More than [`MAX_MULTISIM_CONFIGS`] configurations in one slice.
    TooManyConfigs {
        /// How many were given.
        given: usize,
    },
    /// A configuration uses a policy or geometry the engine cannot
    /// express; use the direct simulator for it.
    Unsupported {
        /// The offending configuration.
        config: CacheConfig,
        /// What exactly is unsupported.
        why: &'static str,
    },
}

impl fmt::Display for MultiSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiSimError::NoConfigs => f.write_str("no configurations to simulate"),
            MultiSimError::TooManyConfigs { given } => write!(
                f,
                "at most {MAX_MULTISIM_CONFIGS} configurations per one-pass slice, got {given}"
            ),
            MultiSimError::Unsupported { config, why } => {
                write!(f, "{config}: {why}")
            }
        }
    }
}

impl Error for MultiSimError {}

/// Which one-pass engine a slice runs on — one per replacement policy
/// the direct simulator implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EngineKind {
    /// The permutation-packed LRU stack engine.
    Lru,
    /// The fill-order-queue FIFO engine.
    Fifo,
    /// The seeded deterministic Random engine.
    Random,
}

impl EngineKind {
    /// Every engine kind, in planner dispatch order.
    pub const ALL: [EngineKind; 3] = [EngineKind::Lru, EngineKind::Fifo, EngineKind::Random];

    /// Stable lowercase name (environment knobs, progress feeds,
    /// metrics labels).
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Lru => "lru",
            EngineKind::Fifo => "fifo",
            EngineKind::Random => "random",
        }
    }

    /// Dense index into per-kind count arrays (`ALL[k.index()] == k`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Parses a lowercase engine name as produced by
    /// [`as_str`](EngineKind::as_str) (case-insensitive).
    pub fn parse(s: &str) -> Option<EngineKind> {
        EngineKind::ALL
            .into_iter()
            .find(|k| s.eq_ignore_ascii_case(k.as_str()))
    }

    /// The engine that can run `config` in one pass, or `None` when only
    /// the direct simulator can (prefetch/load-forward, copy-back,
    /// non-power-of-two sets, >16 ways).
    pub fn for_config(config: &CacheConfig) -> Option<EngineKind> {
        if supports_or_reason(config).is_some() {
            return None;
        }
        Some(match config.replacement() {
            ReplacementPolicy::Lru => EngineKind::Lru,
            ReplacementPolicy::Fifo => EngineKind::Fifo,
            ReplacementPolicy::Random => EngineKind::Random,
        })
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Whether a single configuration is expressible on some one-pass
/// engine (demand fetch + write-through + power-of-two set count, any
/// replacement policy).
///
/// Configurations failing this must run on the direct simulator; see the
/// module docs for why each exclusion exists.
pub fn engine_supports(config: &CacheConfig) -> bool {
    supports_or_reason(config).is_none()
}

fn supports_or_reason(config: &CacheConfig) -> Option<&'static str> {
    if config.fetch() != FetchPolicy::Demand {
        return Some("one-pass simulation requires demand fetch");
    }
    if config.write_policy() != WritePolicy::WriteThrough {
        return Some("one-pass simulation requires write-through accounting");
    }
    let sets = config.num_sets();
    if !sets.is_power_of_two() || sets * config.effective_associativity() != config.num_blocks() {
        return Some("one-pass simulation requires a power-of-two set count");
    }
    if config.block_size() < 2 {
        return Some(
            "one-pass simulation requires block size >= 2 (block numbers reserve a sentinel)",
        );
    }
    if config.effective_associativity() > 16 {
        return Some(
            "one-pass simulation caps associativity at 16 ways (recency permutations pack into 4-bit fields)",
        );
    }
    None
}

/// One replacement policy's one-pass engine, behind an object-safe
/// interface so planners and evaluation loops never name a concrete
/// engine type.
///
/// All implementations promise the same contract the LRU engine always
/// had: [`metrics`](SliceEngine::metrics) is bit-identical to running
/// [`simulate`](crate::simulate) once per member configuration over the
/// same references, [`reset_metrics`](SliceEngine::reset_metrics)
/// zeroes counters while keeping cache (and RNG) state for warm starts,
/// and [`run_pair`](SliceEngine::run_pair) equals two sequential
/// [`access_run`](SliceEngine::access_run) calls — engines override it
/// only to *schedule* the two passes better (the LRU engine interleaves
/// them), never to change results.
pub trait SliceEngine: Send {
    /// Which policy family this engine simulates.
    fn kind(&self) -> EngineKind;

    /// Feeds a run of references through every member configuration.
    fn access_run(&mut self, refs: &[MemRef]);

    /// Zeroes every configuration's metrics while keeping cache state —
    /// the warm-start discipline.
    fn reset_metrics(&mut self);

    /// Metrics accumulated so far, in member-configuration order.
    fn metrics(&self) -> Vec<Metrics>;

    /// Clones the engine, state and all (paired runs drive one engine
    /// per trace from a shared starting point).
    fn clone_box(&self) -> Box<dyn SliceEngine>;

    /// Downcast hook so a concrete engine can recognise a same-type
    /// partner in [`run_pair`](SliceEngine::run_pair).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Presents one chunk to this engine and another chunk to a second
    /// engine over the same configurations. The default runs the two
    /// sequentially; the LRU engine overrides it to interleave the
    /// per-reference steps when the partner is also an LRU engine.
    fn run_pair(&mut self, refs: &[MemRef], other: &mut dyn SliceEngine, other_refs: &[MemRef]) {
        self.access_run(refs);
        other.access_run(other_refs);
    }
}

/// An [`EngineSpec`] builder: constructs an engine for a slice; `seed`
/// feeds policies with random state (deterministic engines ignore it).
pub type EngineBuilder = fn(&[CacheConfig], u64) -> Result<Box<dyn SliceEngine>, MultiSimError>;

/// One registered engine: the seam where a new organisation (victim
/// cache, way prediction, ...) plugs into the planner without touching
/// it — add a kind, a builder, and a registry row.
pub struct EngineSpec {
    /// The policy family the engine covers.
    pub kind: EngineKind,
    /// Builds an engine for a slice.
    pub build: EngineBuilder,
}

/// Every one-pass engine the planner can dispatch to, in
/// [`EngineKind::ALL`] order.
pub static ENGINE_REGISTRY: &[EngineSpec] = &[
    EngineSpec {
        kind: EngineKind::Lru,
        build: |configs, _seed| Ok(Box::new(AllSizesLruEngine::new(configs)?)),
    },
    EngineSpec {
        kind: EngineKind::Fifo,
        build: |configs, _seed| Ok(Box::new(AllSizesFifoEngine::new(configs)?)),
    },
    EngineSpec {
        kind: EngineKind::Random,
        build: |configs, seed| Ok(Box::new(AllSizesRandomEngine::with_seed(configs, seed)?)),
    },
];

/// Builds the one-pass engine matching a slice's replacement policy,
/// seeding random state with [`DEFAULT_RANDOM_SEED`](crate::DEFAULT_RANDOM_SEED)
/// — the direct simulator's default, so results stay bit-identical to
/// [`simulate`](crate::simulate).
///
/// # Errors
///
/// Returns a [`MultiSimError`] when the slice is empty, too wide, mixes
/// replacement policies, or contains an engine-inexpressible
/// configuration.
pub fn engine_for(configs: &[CacheConfig]) -> Result<Box<dyn SliceEngine>, MultiSimError> {
    engine_for_seeded(configs, crate::DEFAULT_RANDOM_SEED)
}

/// [`engine_for`] with an explicit seed for random-state policies.
///
/// # Errors
///
/// Returns a [`MultiSimError`] exactly as [`engine_for`] would.
pub fn engine_for_seeded(
    configs: &[CacheConfig],
    seed: u64,
) -> Result<Box<dyn SliceEngine>, MultiSimError> {
    let first = configs.first().ok_or(MultiSimError::NoConfigs)?;
    let kind = match EngineKind::for_config(first) {
        Some(kind) => kind,
        None => {
            return Err(MultiSimError::Unsupported {
                config: *first,
                why: supports_or_reason(first).unwrap_or("unsupported configuration"),
            });
        }
    };
    let spec = ENGINE_REGISTRY
        .iter()
        .find(|s| s.kind == kind)
        .expect("every engine kind has a registry row");
    (spec.build)(configs, seed)
}

/// Per-configuration eviction/miss accumulators plus the two slice-wide
/// access counters, kept as flat arrays so the per-size hot loops touch
/// a handful of cache lines instead of one `Metrics` struct per size.
#[derive(Debug, Clone, Copy)]
struct CounterBank {
    /// Counted accesses — identical for every configuration in a slice,
    /// so one scalar stands in for all of them.
    accesses: u64,
    /// Data writes — likewise slice-wide; write-through bytes are
    /// `write_accesses * word_size` per configuration at read-out.
    write_accesses: u64,
    /// Miss counters in two lanes — `miss[1]` counted (read/fetch)
    /// misses, `miss[0]` data-write misses — so the hot loops pick a
    /// lane by index instead of by branch.
    miss: [[u64; MAX_MULTISIM_CONFIGS]; 2],
    evicted_blocks: [u64; MAX_MULTISIM_CONFIGS],
    /// Referenced sub-blocks summed over evictions (the unreferenced
    /// count is `evicted_blocks * slots` minus this, per configuration).
    evicted_referenced: [u64; MAX_MULTISIM_CONFIGS],
}

impl Default for CounterBank {
    // Derived `Default` needs `[u64; N]: Default`, which the standard
    // library only provides up to 32 elements.
    fn default() -> Self {
        CounterBank {
            accesses: 0,
            write_accesses: 0,
            miss: [[0; MAX_MULTISIM_CONFIGS]; 2],
            evicted_blocks: [0; MAX_MULTISIM_CONFIGS],
            evicted_referenced: [0; MAX_MULTISIM_CONFIGS],
        }
    }
}

/// What the per-size update loop needs about one configuration of a
/// class, packed so the loop reads it sequentially.
#[derive(Debug, Clone, Copy)]
struct SizeMeta {
    /// Index of the configuration within the slice (counter bank slot).
    si: u8,
    /// log2 of the sub-block size.
    sub_shift: u32,
    /// `sub_blocks_per_block - 1`: selects the sub-slot bit index from
    /// the shifted address.
    slot_mask: u64,
}

/// Sentinel block number marking an unoccupied way.
///
/// With block size ≥ 2 (enforced by [`engine_supports`]) real block
/// numbers are at most `u64::MAX >> 1`, so the sentinel never collides
/// and sets can be treated as always full: the probe compares every way
/// and the fill path is the eviction path with its statistics masked
/// off.
const EMPTY_WAY: u64 = u64::MAX;

/// One deduplicated residency class: the set-mapped block-level state
/// shared by every configuration with this (block size, set count,
/// associativity) triple.
///
/// Configurations in one class make identical fill and eviction
/// decisions under LRU and FIFO alike — sub-block state never feeds
/// back into block-level residency — so the class is policy-agnostic
/// storage and the policy lives in how the runners update it.
///
/// `data` packs each set as `[block_0 .. block_{A-1},
/// masks_0 .. masks_{A-1}]` — the `A` resident block numbers
/// contiguous (so the probe reads one cache line) and in stack order
/// (LRU: recency, most recent first; FIFO: fill order, newest first),
/// followed by `A` rows of `m = meta.len()` member-configuration mask
/// words in **physical** order. Mask rows never move: moving a block
/// rotates only the block words, and the per-set entry of `perm` —
/// sixteen 4-bit fields mapping stack rank to physical mask row — is
/// updated instead. Rotating the mask rows too would make every
/// promotion copy `A * m` words through a store-to-load-forwarding
/// chain; one packed-permutation word update replaces all of that
/// traffic. Unoccupied ways hold [`EMPTY_WAY`] with zero masks, so
/// every set is structurally full and the hot path never consults an
/// occupancy count. (The Random engine reuses the same layout with
/// blocks at fixed physical positions and the permutation left at
/// identity; see [`random`].)
#[derive(Debug, Clone)]
struct ClassState {
    /// log2 of the block size: addresses shift down by this to become
    /// this class's block numbers.
    shift: u32,
    /// `num_sets - 1`: bit-selection set index mask over block numbers.
    mask: u64,
    /// Effective associativity (ways per set).
    assoc: usize,
    /// The slice configurations belonging to this class.
    meta: Vec<SizeMeta>,
    /// `num_sets * assoc * (1 + meta.len())` words of per-set state
    /// (see the struct docs for the layout).
    data: Vec<u64>,
    /// Per-set rank→physical-mask-row permutation, 4 bits per rank
    /// (which is why the engines cap associativity at 16 ways).
    perm: Vec<u64>,
}

/// The identity permutation: rank `r` maps to physical row `r`.
const IDENT_PERM: u64 = 0xFEDC_BA98_7654_3210;

/// Promotes rank `pos` of a packed permutation to rank 0, shifting
/// ranks `0..pos` up by one — the stack rotation, applied to the
/// 4-bit fields instead of the mask rows they name.
#[inline]
fn promote(perm: u64, pos: usize) -> u64 {
    let lo_mask = u64::MAX >> (60 - 4 * pos);
    let moved = (perm >> (4 * pos)) & 15;
    (perm & !lo_mask) | ((perm << 4) & lo_mask) | moved
}

/// Chunk-loop context for one class in a shape-specialised runner:
/// per-chunk tables, borrowed set state, and chunk-local counters.
///
/// Chunk-local miss counters, flushed once by [`SpecCtx::flush`]: the
/// shared bank's slots are the same few addresses every reference, and
/// a read-modify-write there each iteration serialises the loop on
/// store-to-load forwarding. Total and write-lane-only counts (plain
/// arrays, no per-reference lane indexing) let the register allocator
/// keep them live.
///
/// Factoring the per-reference step into [`SpecCtx::visit`] lets one
/// reference loop drive either a single class ([`ClassState::run_spec`])
/// or two classes interleaved ([`run_pair_spec`]); see the latter for
/// why interleaving pays. `visit` is const-generic over a `FIFO` flag:
/// with it set, hits update only the hit way's mask row — no block
/// rotation, no permutation update — which is exactly the direct
/// simulator's "hits do not disturb the queue" FIFO semantics, and the
/// miss path (shift-and-fill at the back) is shared with LRU.
struct SpecCtx<'a, const M: usize> {
    shift: u32,
    set_mask: u64,
    /// Finest member sub-block granularity; block offsets are taken at
    /// this grain when indexing `bit_table`.
    min_shift: u32,
    off_mask: u64,
    /// Per-offset sub-block bit per member; see [`SpecCtx::new`].
    bit_table: [[u64; M]; 32],
    data: &'a mut [u64],
    perms: &'a mut [u64],
    /// Member slice indices, pre-masked so the flush indexes unchecked.
    si: [usize; M],
    miss_total: [u64; M],
    miss_write: [u64; M],
    evb: u64,
    evr: [u64; M],
}

impl<'a, const M: usize> SpecCtx<'a, M> {
    #[inline(always)]
    fn new<const WAYS: usize>(class: &'a mut ClassState) -> Self {
        debug_assert_eq!(class.assoc, WAYS);
        debug_assert_eq!(class.meta.len(), M);
        let mut sub_shift = [0u32; M];
        let mut slot_mask = [0u64; M];
        let mut si = [0usize; M];
        for (w, sm) in class.meta.iter().enumerate() {
            sub_shift[w] = sm.sub_shift;
            slot_mask[w] = sm.slot_mask;
            // Slice indices are < MAX_MULTISIM_CONFIGS by construction;
            // the mask proves it to the optimiser so the counter
            // updates in `flush` index unchecked.
            si[w] = usize::from(sm.si) & (MAX_MULTISIM_CONFIGS - 1);
        }
        // Every member's sub-block bit depends only on the address's
        // offset within the block, and the offset has at most
        // block/min-sub ≤ 32 distinct values — so the two shifts and
        // the mask-and-shift per member per reference collapse to one
        // load from this table, rebuilt per chunk on the stack (≤ 1.5 KB,
        // L1-hot).
        let shift = class.shift;
        let min_shift = sub_shift.iter().copied().min().unwrap_or(0);
        let off_bits = shift - min_shift;
        debug_assert!(off_bits <= 5, "block/sub ratio capped at 32 by Table 1");
        let off_mask = (1u64 << off_bits) - 1;
        let mut bit_table = [[0u64; M]; 32];
        for (off, bits) in bit_table.iter_mut().enumerate().take(1 << off_bits) {
            for w in 0..M {
                let slot = ((off as u64) >> (sub_shift[w] - min_shift)) & slot_mask[w];
                bits[w] = 1u64 << slot;
            }
        }
        let set_mask = class.mask;
        let data = &mut class.data[..];
        let perms = &mut class.perm[..];
        // Two length proofs ahead of the reference loop: every set
        // index in `visit` is `block & set_mask`, so `base + row_words`
        // never exceeds `(set_mask + 1) * row_words` — with the
        // equalities pinned here the per-reference row slicing and
        // permutation access compile without bounds checks.
        assert_eq!(data.len(), (set_mask as usize + 1) * (WAYS * (1 + M)));
        assert_eq!(perms.len(), set_mask as usize + 1);
        SpecCtx {
            shift,
            set_mask,
            min_shift,
            off_mask,
            bit_table,
            data,
            perms,
            si,
            miss_total: [0u64; M],
            miss_write: [0u64; M],
            evb: 0,
            evr: [0u64; M],
        }
    }

    /// Presents one reference to this class: the entire per-reference
    /// step of the specialised runners. With `FIFO` set, hits touch
    /// only the hit way's mask row; the queue and permutation move on
    /// misses alone.
    #[inline(always)]
    fn visit<const WAYS: usize, const FIFO: bool>(&mut self, a: u64, wmask: u64) {
        let row_words = WAYS * (1 + M);
        let block = a >> self.shift;
        let set = (block & self.set_mask) as usize;
        let base = set * row_words;
        let data = &mut *self.data;
        let perms = &mut *self.perms;
        let row = &mut data[base..base + row_words];
        let bits = &self.bit_table[((a >> self.min_shift) & self.off_mask) as usize];
        // Top-two fast path: hits on the two newest ways cover both
        // straight-line reuse and the in-set ping-pong of two
        // interleaved streams (instruction fetches alternating with
        // data references), so this branch predicts far better than
        // a front-way-only check — and which of the two ways hit is
        // resolved with selects, not a second branch. Mask rows are
        // physical: only the hit way's row is touched, found through
        // the permutation word. Under LRU a way-1 hit swaps the two
        // front permutation fields instead of moving any masks; under
        // FIFO hits move nothing at all.
        let p = perms[set];
        if WAYS >= 2 {
            let h1 = row[1] == block;
            if row[0] == block || h1 {
                let phys0 = (p as usize) & (WAYS - 1);
                let phys1 = ((p >> 4) as usize) & (WAYS - 1);
                let mrow = WAYS + if h1 { phys1 } else { phys0 } * M;
                if !FIFO {
                    let b0 = row[0];
                    row[0] = block;
                    row[1] = if h1 { b0 } else { row[1] };
                    let swapped = (p & !0xFF) | (((p & 15) << 4) | ((p >> 4) & 15));
                    perms[set] = if h1 { swapped } else { p };
                }
                for w in 0..M {
                    let bit = bits[w];
                    let old = row[mrow + w];
                    let missed = u64::from(old & bit == 0);
                    self.miss_total[w] += missed;
                    self.miss_write[w] += missed & wmask;
                    row[mrow + w] = old | bit;
                }
                return;
            }
        } else if row[0] == block {
            for w in 0..M {
                let bit = bits[w];
                let old = row[WAYS + w];
                let missed = u64::from(old & bit == 0);
                self.miss_total[w] += missed;
                self.miss_write[w] += missed & wmask;
                row[WAYS + w] = old | bit;
            }
            return;
        }
        // Ways 0 and 1 were just probed (way 0 alone when WAYS is
        // 1), so the scan starts at 2 — empty for 1- and 2-way sets,
        // where falling through means a miss.
        let mut j = usize::MAX;
        #[allow(clippy::needless_range_loop)] // select scan: stay branch-free
        for t in 2..WAYS {
            if row[t] == block {
                j = t;
            }
        }
        let hit = j != usize::MAX;
        let pos = if hit { j } else { WAYS - 1 };
        let mrow = WAYS + (((p >> (4 * pos)) as usize) & (WAYS - 1)) * M;
        // Eviction of a real block is the rarest outcome; keeping
        // its statistics behind a branch spares the common paths
        // the victim-mask loads and counter read-modify-writes. The
        // victim's masks live in the row about to be refilled, read
        // here before the update loop overwrites them.
        if !hit && row[WAYS - 1] != EMPTY_WAY {
            self.evb += 1;
            for w in 0..M {
                self.evr[w] += u64::from(row[mrow + w].count_ones());
            }
        }
        // All-ones when hit: masks the old way's words so the miss
        // case sees zeros without a separate arm.
        let keep = u64::from(hit).wrapping_neg();
        for w in 0..M {
            let bit = bits[w];
            let old = row[mrow + w] & keep;
            let missed = u64::from(old & bit == 0);
            self.miss_total[w] += missed;
            self.miss_write[w] += missed & wmask;
            row[mrow + w] = old | bit;
        }
        // FIFO hits leave the queue untouched — only misses shift the
        // block words and rotate the permutation (and for FIFO a miss
        // always has pos == WAYS - 1: pure shift-and-fill at the back,
        // consuming sentinels in fill order while any remain).
        if FIFO && hit {
            return;
        }
        // Shift block words right where their slot index is ≤ pos,
        // leave the rest: with const bounds this unrolls to pure
        // load/select/store, no branch on `pos`. The mask rows stay
        // put — the permutation promotion below is the whole of the
        // stack bookkeeping for them.
        for t in (1..WAYS).rev() {
            let shifted = row[t - 1];
            let kept = row[t];
            row[t] = if t <= pos { shifted } else { kept };
        }
        row[0] = block;
        perms[set] = promote(p, pos);
    }

    /// Folds the chunk-local counters into the shared bank.
    fn flush(
        self,
        miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
        evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
        evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
    ) {
        for w in 0..M {
            miss[1][self.si[w]] += self.miss_total[w] - self.miss_write[w];
            miss[0][self.si[w]] += self.miss_write[w];
            evicted_blocks[self.si[w]] += self.evb;
            evicted_referenced[self.si[w]] += self.evr[w];
        }
    }
}

/// Runs one pre-decoded chunk through two same-shape classes with
/// their per-reference steps interleaved in a single loop.
///
/// A class's step for reference `i+1` frequently chains on its step
/// for reference `i` through store-to-load forwarding — sequential
/// code keeps hitting the same set, so the permutation word and the
/// front block words are stored and immediately reloaded. Interleaving
/// two classes puts a second, fully independent dependency chain in
/// the out-of-order window, overlapping those stalls (and sharing the
/// one address load per reference); measured on the Table 7 grid this
/// is worth roughly a third of the pass.
fn run_pair_spec<const WAYS: usize, const MA: usize, const MB: usize, const FIFO: bool>(
    first: &mut ClassState,
    second: &mut ClassState,
    addrs: &[u64],
    lanes: &[u8],
    miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
    evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
    evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
) {
    let mut ca = SpecCtx::<MA>::new::<WAYS>(first);
    let mut cb = SpecCtx::<MB>::new::<WAYS>(second);
    for (&a, &lane) in addrs.iter().zip(lanes) {
        // All-ones for data writes (lane 0), zero for counted refs.
        let wmask = u64::from(lane & 1).wrapping_sub(1);
        ca.visit::<WAYS, FIFO>(a, wmask);
        cb.visit::<WAYS, FIFO>(a, wmask);
    }
    ca.flush(miss, evicted_blocks, evicted_referenced);
    cb.flush(miss, evicted_blocks, evicted_referenced);
}

/// Runs a chunk through every class, pairing adjacent 4-way classes so
/// their loops interleave (see [`run_pair_spec`]); classes that cannot
/// pair — odd one out, non-4-way, or too many members for a
/// specialisation — run alone via [`ClassState::run`].
///
/// Pairing never changes results (classes are independent); it only
/// changes how their per-reference steps are scheduled. Policy comes in
/// through the const `FIFO` flag — the LRU and FIFO engines share this
/// scheduler.
fn run_classes<const FIFO: bool>(
    classes: &mut [ClassState],
    addrs: &[u64],
    lanes: &[u8],
    miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
    evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
    evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
) {
    let mut i = 0;
    while i < classes.len() {
        if i + 1 < classes.len() {
            let (head, tail) = classes.split_at_mut(i + 1);
            let a = &mut head[i];
            let b = &mut tail[0];
            if a.assoc == 4 && b.assoc == 4 {
                macro_rules! pair {
                    ($ma:literal, $mb:literal) => {{
                        run_pair_spec::<4, $ma, $mb, FIFO>(
                            a,
                            b,
                            addrs,
                            lanes,
                            miss,
                            evicted_blocks,
                            evicted_referenced,
                        );
                        true
                    }};
                }
                let paired = match (a.meta.len(), b.meta.len()) {
                    (1, 1) => pair!(1, 1),
                    (1, 2) => pair!(1, 2),
                    (1, 3) => pair!(1, 3),
                    (1, 4) => pair!(1, 4),
                    (1, 5) => pair!(1, 5),
                    (1, 6) => pair!(1, 6),
                    (2, 1) => pair!(2, 1),
                    (2, 2) => pair!(2, 2),
                    (2, 3) => pair!(2, 3),
                    (2, 4) => pair!(2, 4),
                    (2, 5) => pair!(2, 5),
                    (2, 6) => pair!(2, 6),
                    (3, 1) => pair!(3, 1),
                    (3, 2) => pair!(3, 2),
                    (3, 3) => pair!(3, 3),
                    (3, 4) => pair!(3, 4),
                    (3, 5) => pair!(3, 5),
                    (3, 6) => pair!(3, 6),
                    (4, 1) => pair!(4, 1),
                    (4, 2) => pair!(4, 2),
                    (4, 3) => pair!(4, 3),
                    (4, 4) => pair!(4, 4),
                    (4, 5) => pair!(4, 5),
                    (4, 6) => pair!(4, 6),
                    (5, 1) => pair!(5, 1),
                    (5, 2) => pair!(5, 2),
                    (5, 3) => pair!(5, 3),
                    (5, 4) => pair!(5, 4),
                    (5, 5) => pair!(5, 5),
                    (5, 6) => pair!(5, 6),
                    (6, 1) => pair!(6, 1),
                    (6, 2) => pair!(6, 2),
                    (6, 3) => pair!(6, 3),
                    (6, 4) => pair!(6, 4),
                    (6, 5) => pair!(6, 5),
                    (6, 6) => pair!(6, 6),
                    _ => false,
                };
                if paired {
                    i += 2;
                    continue;
                }
            }
        }
        classes[i].run::<FIFO>(addrs, lanes, miss, evicted_blocks, evicted_referenced);
        i += 1;
    }
}

impl ClassState {
    /// Presents one reference (`lane` 1 = counted, 0 = data write) to
    /// this class and its member configurations. Generic fallback for
    /// shapes [`ClassState::run`] has no specialisation for, and the
    /// single-reference `access` paths.
    fn one<const FIFO: bool>(
        &mut self,
        a: u64,
        lane: usize,
        miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
        evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
        evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
    ) {
        let block = a >> self.shift;
        let ways = self.assoc;
        let m = self.meta.len();
        let set = (block & self.mask) as usize;
        let base = set * ways * (1 + m);
        let row = &mut self.data[base..base + ways * (1 + m)];
        // Probe every way (sentinels never match; resident block
        // numbers are distinct, so no early exit is needed).
        let mut j = usize::MAX;
        #[allow(clippy::needless_range_loop)] // select scan: stay branch-free
        for t in 0..ways {
            if row[t] == block {
                j = t;
            }
        }
        let hit = j != usize::MAX;
        // The way being replaced at the front: the hit way, or the
        // oldest way (victim) on a miss.
        let pos = if hit { j } else { ways - 1 };
        let perm = &mut self.perm[set];
        // The mask row of the touched way never moves; the permutation
        // names it and is rotated in its stead below.
        let mrow = ways + (((*perm >> (4 * pos)) & 15) as usize) * m;
        let miss_ctr = &mut miss[lane];
        if FIFO && hit {
            // FIFO hits leave the queue and permutation untouched;
            // only the hit way's mask rows pick up the sub-block.
            for (w, sm) in self.meta.iter().enumerate() {
                let bit = 1u64 << ((a >> sm.sub_shift) & sm.slot_mask);
                let old = row[mrow + w];
                miss_ctr[usize::from(sm.si) & (MAX_MULTISIM_CONFIGS - 1)] +=
                    u64::from(old & bit == 0);
                row[mrow + w] = old | bit;
            }
            return;
        }
        if !hit && row[ways - 1] != EMPTY_WAY {
            // Evicting a real block: record its referenced sub-blocks
            // for every member configuration before the refill below
            // overwrites the victim's masks.
            for (w, sm) in self.meta.iter().enumerate() {
                let si = usize::from(sm.si);
                evicted_blocks[si] += 1;
                evicted_referenced[si] += u64::from(row[mrow + w].count_ones());
            }
        }
        // Rotate block words 0..=pos right by one — the pos way (hit or
        // victim) lands at slot 0 — and promote the permutation to
        // match; the mask rows stay put.
        row[..pos + 1].rotate_right(1);
        row[0] = block;
        *perm = promote(*perm, pos);
        let keep = u64::from(hit).wrapping_neg();
        for (w, sm) in self.meta.iter().enumerate() {
            let bit = 1u64 << ((a >> sm.sub_shift) & sm.slot_mask);
            let old = row[mrow + w] & keep;
            miss_ctr[usize::from(sm.si) & (MAX_MULTISIM_CONFIGS - 1)] += u64::from(old & bit == 0);
            row[mrow + w] = old | bit;
        }
    }

    /// Runs a whole pre-decoded chunk of references through this class,
    /// dispatching to a shape-specialised inner loop when one exists.
    ///
    /// The specialisations cover every (associativity, member-count)
    /// shape the paper grids produce; anything else falls back to the
    /// generic per-reference path, which is exact but branchier.
    fn run<const FIFO: bool>(
        &mut self,
        addrs: &[u64],
        lanes: &[u8],
        miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
        evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
        evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
    ) {
        macro_rules! spec {
            ($w:literal, $m:literal) => {
                self.run_spec::<$w, $m, FIFO>(
                    addrs,
                    lanes,
                    miss,
                    evicted_blocks,
                    evicted_referenced,
                )
            };
        }
        match (self.assoc, self.meta.len()) {
            (1, 1) => spec!(1, 1),
            (1, 2) => spec!(1, 2),
            (1, 3) => spec!(1, 3),
            (1, 4) => spec!(1, 4),
            (1, 5) => spec!(1, 5),
            (1, 6) => spec!(1, 6),
            (2, 1) => spec!(2, 1),
            (2, 2) => spec!(2, 2),
            (2, 3) => spec!(2, 3),
            (2, 4) => spec!(2, 4),
            (2, 5) => spec!(2, 5),
            (2, 6) => spec!(2, 6),
            (4, 1) => spec!(4, 1),
            (4, 2) => spec!(4, 2),
            (4, 3) => spec!(4, 3),
            (4, 4) => spec!(4, 4),
            (4, 5) => spec!(4, 5),
            (4, 6) => spec!(4, 6),
            (8, 1) => spec!(8, 1),
            (8, 2) => spec!(8, 2),
            _ => {
                for (&a, &lane) in addrs.iter().zip(lanes) {
                    self.one::<FIFO>(
                        a,
                        usize::from(lane),
                        miss,
                        evicted_blocks,
                        evicted_referenced,
                    );
                }
            }
        }
    }

    /// The shape-specialised inner loop: `WAYS`-way sets with `M`
    /// member configurations, both const so every way-loop and
    /// size-loop in [`SpecCtx::visit`] fully unrolls and the hit/miss
    /// arms collapse to straight-line selects.
    ///
    /// Must be exactly equivalent to calling [`ClassState::one`] per
    /// reference; `access_run_matches_per_reference_access` and the
    /// equivalence proptests enforce this.
    fn run_spec<const WAYS: usize, const M: usize, const FIFO: bool>(
        &mut self,
        addrs: &[u64],
        lanes: &[u8],
        miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
        evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
        evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
    ) {
        let mut ctx = SpecCtx::<M>::new::<WAYS>(self);
        for (&a, &lane) in addrs.iter().zip(lanes) {
            // All-ones for data writes (lane 0), zero for counted refs.
            let wmask = u64::from(lane & 1).wrapping_sub(1);
            ctx.visit::<WAYS, FIFO>(a, wmask);
        }
        ctx.flush(miss, evicted_blocks, evicted_referenced);
    }
}

/// The construction, chunk-decode and read-out machinery every engine
/// shares: per-slice residency classes, the counter bank, the per-size
/// read-out tables, and the chunk scratch buffers. Engines wrap this
/// and differ only in how they run a decoded chunk through the classes.
#[derive(Debug, Clone)]
struct EngineCore {
    /// Number of configurations (prefix of the per-size arrays).
    n: usize,
    classes: Vec<ClassState>,
    sub_size: [u64; MAX_MULTISIM_CONFIGS],
    /// Sub-block slots per block, as recorded in eviction statistics.
    slots: [u64; MAX_MULTISIM_CONFIGS],
    /// Bus word size (write-through accounting).
    word_size: [u64; MAX_MULTISIM_CONFIGS],
    bank: CounterBank,
    /// Chunk scratch: addresses decoded once per `access_run` chunk so
    /// the per-class passes read plain words instead of re-decoding
    /// every reference per class.
    scratch_addr: Vec<u64>,
    /// Chunk scratch: counter lane per reference (1 counted, 0 write).
    scratch_lane: Vec<u8>,
}

impl EngineCore {
    /// Validates a slice for `policy` and builds its residency classes.
    fn new(configs: &[CacheConfig], policy: ReplacementPolicy) -> Result<Self, MultiSimError> {
        if configs.is_empty() {
            return Err(MultiSimError::NoConfigs);
        }
        if configs.len() > MAX_MULTISIM_CONFIGS {
            return Err(MultiSimError::TooManyConfigs {
                given: configs.len(),
            });
        }
        for &config in configs {
            if let Some(why) = supports_or_reason(&config) {
                return Err(MultiSimError::Unsupported { config, why });
            }
            if config.replacement() != policy {
                return Err(MultiSimError::Unsupported {
                    config,
                    why: "a one-pass slice must not mix replacement policies \
                          (the planner groups per policy)",
                });
            }
        }
        let mut classes: Vec<ClassState> = Vec::new();
        let mut sub_size = [0u64; MAX_MULTISIM_CONFIGS];
        let mut slots = [0u64; MAX_MULTISIM_CONFIGS];
        let mut word_size = [0u64; MAX_MULTISIM_CONFIGS];
        for (si, c) in configs.iter().enumerate() {
            let shift = c.block_size().trailing_zeros();
            let mask = c.num_sets() - 1;
            let assoc = c.effective_associativity() as usize;
            let class = match classes
                .iter_mut()
                .find(|x| x.shift == shift && x.mask == mask && x.assoc == assoc)
            {
                Some(class) => class,
                None => {
                    classes.push(ClassState {
                        shift,
                        mask,
                        assoc,
                        meta: Vec::new(),
                        data: Vec::new(),
                        perm: Vec::new(),
                    });
                    classes.last_mut().expect("just pushed")
                }
            };
            class.meta.push(SizeMeta {
                si: si as u8,
                sub_shift: c.sub_block_size().trailing_zeros(),
                slot_mask: c.sub_blocks_per_block() - 1,
            });
            sub_size[si] = c.sub_block_size();
            slots[si] = c.sub_blocks_per_block();
            word_size[si] = c.word_size();
        }
        // Set state is sized once membership is final: per way, one
        // block word plus one mask word per member configuration, the
        // block words leading each set and initialised to the sentinel.
        for class in &mut classes {
            let sets = (class.mask + 1) as usize;
            let set_words = class.assoc * (1 + class.meta.len());
            class.data = vec![0; sets * set_words];
            for set in class.data.chunks_exact_mut(set_words) {
                set[..class.assoc].fill(EMPTY_WAY);
            }
            class.perm = vec![IDENT_PERM; sets];
        }
        Ok(EngineCore {
            n: configs.len(),
            classes,
            sub_size,
            slots,
            word_size,
            bank: CounterBank::default(),
            scratch_addr: Vec::new(),
            scratch_lane: Vec::new(),
        })
    }

    /// Decodes one chunk into the address/lane scratch and folds the
    /// access totals into the bank.
    fn decode_chunk(&mut self, refs: &[MemRef]) {
        self.scratch_addr.clear();
        self.scratch_lane.clear();
        for r in refs {
            let counted = u8::from(r.kind().is_counted());
            self.bank.accesses += u64::from(counted);
            self.bank.write_accesses += u64::from(1 - counted);
            self.scratch_addr.push(r.address().value());
            self.scratch_lane.push(counted);
        }
    }

    /// Folds one reference's access totals into the bank (per-reference
    /// `access` paths) and returns its counter lane.
    fn count_one(&mut self, kind: AccessKind) -> usize {
        let counted = u64::from(kind.is_counted());
        self.bank.accesses += counted;
        self.bank.write_accesses += 1 - counted;
        counted as usize
    }

    /// Whether `other` simulates the identical residency-class layout
    /// (same configurations in the same order), making two engines
    /// eligible for an interleaved paired run.
    fn same_shape(&self, other: &Self) -> bool {
        self.n == other.n
            && self.classes.len() == other.classes.len()
            && self.classes.iter().zip(&other.classes).all(|(a, b)| {
                a.shift == b.shift
                    && a.mask == b.mask
                    && a.assoc == b.assoc
                    && a.meta.len() == b.meta.len()
            })
    }

    /// Zeroes every configuration's metrics while keeping cache state.
    fn reset_metrics(&mut self) {
        self.bank = CounterBank::default();
    }

    /// Expands the compact per-size counters into full [`Metrics`],
    /// exactly.
    fn metrics(&self) -> Vec<Metrics> {
        (0..self.n)
            .map(|si| {
                Metrics::from_engine(
                    self.word_size[si],
                    self.sub_size[si],
                    self.slots[si],
                    EngineCounters {
                        accesses: self.bank.accesses,
                        write_accesses: self.bank.write_accesses,
                        misses: self.bank.miss[1][si],
                        write_misses: self.bank.miss[0][si],
                        evicted_blocks: self.bank.evicted_blocks[si],
                        evicted_referenced_subs: self.bank.evicted_referenced[si],
                    },
                )
            })
            .collect()
    }
}

/// Simulates a whole trace against a compatible slice of configurations
/// in one pass, returning per-configuration metrics in input order.
///
/// The one-pass counterpart of [`simulate`](crate::simulate): `warmup`
/// references prime the caches and are excluded from the metrics, and
/// every returned [`Metrics`] is bit-identical to what
/// `simulate(configs[i], refs, warmup)` would produce. The engine is
/// chosen by the slice's replacement policy; Random slices are seeded
/// with [`DEFAULT_RANDOM_SEED`](crate::DEFAULT_RANDOM_SEED), matching
/// the direct simulator's default.
///
/// # Errors
///
/// Returns a [`MultiSimError`] when the slice cannot run on any engine;
/// see [`engine_supports`] for the per-configuration conditions.
pub fn simulate_many<I>(
    configs: &[CacheConfig],
    refs: I,
    warmup: usize,
) -> Result<Vec<Metrics>, MultiSimError>
where
    I: IntoIterator<Item = MemRef>,
{
    simulate_many_seeded(configs, refs, warmup, crate::DEFAULT_RANDOM_SEED)
}

/// [`simulate_many`] with an explicit seed for random-state policies —
/// bit-identical to `simulate_seeded(configs[i], refs, warmup, seed)`
/// per member (deterministic engines ignore the seed).
///
/// # Errors
///
/// Returns a [`MultiSimError`] exactly as [`simulate_many`] would.
pub fn simulate_many_seeded<I>(
    configs: &[CacheConfig],
    refs: I,
    warmup: usize,
    seed: u64,
) -> Result<Vec<Metrics>, MultiSimError>
where
    I: IntoIterator<Item = MemRef>,
{
    let mut engine = engine_for_seeded(configs, seed)?;
    let mut iter = refs.into_iter();
    // Buffer the stream into chunks sized to stay cache-resident while
    // the per-class tiled loops of `access_run` sweep over them.
    let mut buf: Vec<MemRef> = Vec::with_capacity(ENGINE_CHUNK);
    let mut remaining = warmup;
    while remaining > 0 {
        buf.clear();
        buf.extend(iter.by_ref().take(remaining.min(ENGINE_CHUNK)));
        if buf.is_empty() {
            break;
        }
        remaining -= buf.len();
        engine.access_run(&buf);
    }
    engine.reset_metrics();
    loop {
        buf.clear();
        buf.extend(iter.by_ref().take(ENGINE_CHUNK));
        if buf.is_empty() {
            break;
        }
        engine.access_run(&buf);
    }
    Ok(engine.metrics())
}

/// [`simulate_many`] for two traces at once: one engine per trace,
/// driven chunk-by-chunk through [`SliceEngine::run_pair`] so the two
/// passes can interleave (the LRU engine does; other engines run the
/// chunks sequentially).
///
/// Returns exactly what two separate [`simulate_many`] calls would
/// (the interleave never mixes state); the pairing is purely a
/// scheduling change that overlaps the two traces' dependency chains.
///
/// # Errors
///
/// Returns a [`MultiSimError`] exactly as [`simulate_many`] would.
pub fn simulate_many_pair<I, J>(
    configs: &[CacheConfig],
    refs_a: I,
    refs_b: J,
    warmup: usize,
) -> Result<(Vec<Metrics>, Vec<Metrics>), MultiSimError>
where
    I: IntoIterator<Item = MemRef>,
    J: IntoIterator<Item = MemRef>,
{
    let mut engine_a = engine_for(configs)?;
    let mut engine_b = engine_a.clone_box();
    let mut iter_a = refs_a.into_iter();
    let mut iter_b = refs_b.into_iter();
    let mut buf_a: Vec<MemRef> = Vec::with_capacity(ENGINE_CHUNK);
    let mut buf_b: Vec<MemRef> = Vec::with_capacity(ENGINE_CHUNK);
    let mut remaining = warmup;
    while remaining > 0 {
        let take = remaining.min(ENGINE_CHUNK);
        buf_a.clear();
        buf_a.extend(iter_a.by_ref().take(take));
        buf_b.clear();
        buf_b.extend(iter_b.by_ref().take(take));
        if buf_a.is_empty() && buf_b.is_empty() {
            break;
        }
        // Both traces consume warmup at the same pace, so the chunks
        // stay aligned until one stream ends (the pair call falls back
        // to serial runs for ragged tails).
        remaining -= take.min(buf_a.len().max(buf_b.len()));
        engine_a.run_pair(&buf_a, engine_b.as_mut(), &buf_b);
    }
    engine_a.reset_metrics();
    engine_b.reset_metrics();
    loop {
        buf_a.clear();
        buf_a.extend(iter_a.by_ref().take(ENGINE_CHUNK));
        buf_b.clear();
        buf_b.extend(iter_b.by_ref().take(ENGINE_CHUNK));
        if buf_a.is_empty() && buf_b.is_empty() {
            break;
        }
        engine_a.run_pair(&buf_a, engine_b.as_mut(), &buf_b);
    }
    Ok((engine_a.metrics(), engine_b.metrics()))
}

/// Chunk size (in references) used when feeding an iterator through an
/// engine's tiled [`access_run`](SliceEngine::access_run) path: a chunk
/// this size stays L1/L2-resident while every residency class sweeps
/// over it.
pub const ENGINE_CHUNK: usize = 4096;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;

    fn cfg(net: u64, block: u64, sub: u64) -> CacheConfig {
        CacheConfig::builder()
            .net_size(net)
            .block_size(block)
            .sub_block_size(sub)
            .word_size(2)
            .build()
            .unwrap()
    }

    pub(super) fn cfg_policy(
        net: u64,
        block: u64,
        sub: u64,
        policy: ReplacementPolicy,
    ) -> CacheConfig {
        CacheConfig::builder()
            .net_size(net)
            .block_size(block)
            .sub_block_size(sub)
            .word_size(2)
            .replacement(policy)
            .build()
            .unwrap()
    }

    /// A deterministic trace with loops, strides and writes — enough
    /// structure to exercise hits, conflict misses and evictions.
    pub(super) fn mixed_trace(len: u64, span: u64) -> Vec<MemRef> {
        (0..len)
            .map(|i| {
                let addr = (i * 7 + (i / 13) * 31) % span * 2;
                match i % 5 {
                    0 | 1 => MemRef::ifetch(addr),
                    2 | 3 => MemRef::read(addr),
                    _ => MemRef::write(addr),
                }
            })
            .collect()
    }

    #[test]
    fn matches_direct_simulation_across_sizes() {
        let configs = [cfg(64, 16, 8), cfg(256, 16, 8), cfg(1024, 16, 8)];
        let trace = mixed_trace(20_000, 4096);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 0);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn matches_direct_simulation_with_warmup() {
        let configs = [cfg(64, 8, 2), cfg(256, 8, 2), cfg(1024, 8, 2)];
        let trace = mixed_trace(10_000, 2048);
        let all = simulate_many(&configs, trace.iter().copied(), 1_000).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 1_000);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn single_config_slice_matches_direct() {
        let configs = [cfg(128, 8, 8)];
        let trace = mixed_trace(5_000, 1024);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        assert_eq!(all[0], simulate(configs[0], trace.iter().copied(), 0));
    }

    #[test]
    fn tiny_caches_with_capped_associativity_match() {
        // net 32, block 16 -> 2 blocks, effective associativity 2, 1 set.
        let configs = [cfg(32, 16, 8), cfg(64, 16, 8)];
        let trace = mixed_trace(5_000, 512);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            assert_eq!(
                *metrics,
                simulate(*config, trace.iter().copied(), 0),
                "{config}"
            );
        }
    }

    #[test]
    fn every_replacement_policy_is_engine_eligible() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let config = cfg_policy(64, 8, 4, policy);
            assert!(engine_supports(&config), "{policy:?}");
        }
        assert_eq!(
            EngineKind::for_config(&cfg_policy(64, 8, 4, ReplacementPolicy::Fifo)),
            Some(EngineKind::Fifo)
        );
        assert_eq!(
            EngineKind::for_config(&cfg_policy(64, 8, 4, ReplacementPolicy::Random)),
            Some(EngineKind::Random)
        );
    }

    #[test]
    fn rejects_unsupported_features_and_mixed_policies() {
        let fifo = cfg_policy(64, 8, 4, ReplacementPolicy::Fifo);
        // A FIFO config no longer falls back — but it cannot ride an
        // LRU engine instance.
        assert!(matches!(
            AllSizesLruEngine::new(&[fifo]),
            Err(MultiSimError::Unsupported { .. })
        ));
        assert!(matches!(
            engine_for(&[cfg(64, 8, 4), fifo]),
            Err(MultiSimError::Unsupported { .. })
        ));
        let prefetch = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(4)
            .word_size(2)
            .fetch(FetchPolicy::PrefetchNext { tagged: false })
            .build()
            .unwrap();
        assert!(!engine_supports(&prefetch));
        assert_eq!(EngineKind::for_config(&prefetch), None);
        let copy_back = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(4)
            .word_size(2)
            .write_policy(WritePolicy::CopyBack)
            .build()
            .unwrap();
        assert!(!engine_supports(&copy_back));
    }

    #[test]
    fn engine_kind_names_round_trip() {
        for kind in EngineKind::ALL {
            assert_eq!(EngineKind::parse(kind.as_str()), Some(kind));
            assert_eq!(EngineKind::ALL[kind.index()], kind);
        }
        assert_eq!(EngineKind::parse("LRU"), Some(EngineKind::Lru));
        assert_eq!(EngineKind::parse("direct"), None);
    }

    #[test]
    fn registry_dispatches_each_policy_to_its_engine() {
        for (policy, kind) in [
            (ReplacementPolicy::Lru, EngineKind::Lru),
            (ReplacementPolicy::Fifo, EngineKind::Fifo),
            (ReplacementPolicy::Random, EngineKind::Random),
        ] {
            let engine = engine_for(&[cfg_policy(64, 8, 4, policy)]).unwrap();
            assert_eq!(engine.kind(), kind);
        }
    }

    #[test]
    fn rejects_non_power_of_two_set_counts() {
        // 8 blocks at 3-way: 8/3 truncates, so bit selection cannot map it.
        let odd = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(8)
            .associativity(3)
            .word_size(2)
            .build()
            .unwrap();
        assert!(!engine_supports(&odd));
    }

    #[test]
    fn rejects_empty_and_oversized_slices() {
        assert!(matches!(
            AllSizesLruEngine::new(&[]),
            Err(MultiSimError::NoConfigs)
        ));
        assert!(matches!(engine_for(&[]), Err(MultiSimError::NoConfigs)));
        let oversized = [cfg(64, 8, 4); MAX_MULTISIM_CONFIGS + 1];
        assert!(matches!(
            AllSizesLruEngine::new(&oversized),
            Err(MultiSimError::TooManyConfigs { .. })
        ));
    }

    #[test]
    fn mixed_block_sizes_share_one_pass() {
        // A whole Table-7-shaped grid in one slice: three block sizes
        // with distinct sub-block choices across three net sizes. Every
        // (block, sets, assoc) triple becomes its own residency class,
        // so no two configurations here may share residency decisions
        // incorrectly.
        let configs = [
            cfg(64, 32, 8),
            cfg(64, 16, 16),
            cfg(64, 8, 2),
            cfg(256, 32, 8),
            cfg(256, 16, 16),
            cfg(256, 8, 2),
            cfg(1024, 32, 8),
            cfg(1024, 16, 16),
            cfg(1024, 8, 2),
        ];
        let trace = mixed_trace(20_000, 4096);
        let all = simulate_many(&configs, trace.iter().copied(), 500).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 500);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn mixed_sub_block_sizes_share_one_pass() {
        // Same block size, three sub-block variants at two nets: six
        // configurations, two residency classes. The slice exercises the
        // class-deduplication path and per-size sub-block accounting.
        let configs = [
            cfg(64, 16, 16),
            cfg(64, 16, 8),
            cfg(64, 16, 4),
            cfg(256, 16, 16),
            cfg(256, 16, 8),
            cfg(256, 16, 4),
        ];
        let trace = mixed_trace(20_000, 4096);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 0);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn wide_span_traces_match_direct_with_bounded_state() {
        // Small caches with large blocks collapse to one set; a
        // wide-span trace forces thousands of distinct blocks through a
        // slice whose total resident capacity is a couple dozen ways.
        // The engine's state is capacity-bound by construction (only
        // resident blocks are stored), so this shape — quadratic for a
        // merged recency stack holding every block ever referenced —
        // must stay linear and exact.
        let configs = [cfg(64, 32, 8), cfg(256, 32, 8), cfg(1024, 32, 8)];
        let trace = mixed_trace(60_000, 1 << 17);
        let mut engine = AllSizesLruEngine::new(&configs).unwrap();
        for r in &trace {
            engine.access(r.address(), r.kind());
        }
        for (config, metrics) in configs.iter().zip(engine.metrics()) {
            assert_eq!(
                metrics,
                simulate(*config, trace.iter().copied(), 0),
                "{config}"
            );
        }
    }

    #[test]
    fn access_run_matches_per_reference_access() {
        let configs = [cfg(64, 16, 8), cfg(256, 16, 8)];
        let trace = mixed_trace(10_000, 2048);
        let mut chunked = AllSizesLruEngine::new(&configs).unwrap();
        for chunk in trace.chunks(97) {
            chunked.access_run(chunk);
        }
        let mut one = AllSizesLruEngine::new(&configs).unwrap();
        for r in &trace {
            one.access(r.address(), r.kind());
        }
        assert_eq!(chunked.metrics(), one.metrics());
    }

    #[test]
    fn error_display_is_nonempty() {
        let errs = [
            MultiSimError::NoConfigs,
            MultiSimError::TooManyConfigs { given: 9 },
            MultiSimError::Unsupported {
                config: cfg(64, 8, 4),
                why: "test",
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
