//! The one-pass all-sizes Random engine: a seeded, deterministic
//! replication of the direct simulator's random replacement.
//!
//! Random replacement has no stack structure to exploit, but the
//! residency-class argument still holds — and extends to the random
//! draws themselves. The direct simulator gives every cache its own
//! generator, seeded identically, and draws from it only on a
//! block miss in a full set. Configurations in one residency class see
//! the identical sequence of (miss, set-full) events in trace order, so
//! their caches consume identical draw sequences from identically
//! seeded generators and pick the same victims forever. One generator
//! per class therefore reproduces every member cache's decisions
//! exactly, and the engine stays bit-identical to
//! [`simulate`](crate::simulate) — not merely statistically alike.
//!
//! Unlike the stack engines, blocks keep **fixed physical positions**:
//! fills take the first empty way in order (the direct simulator's
//! fill-the-first-empty-frame rule, tracked by a per-set fill count),
//! replacements overwrite the drawn way in place, and the permutation
//! word stays at identity — mask row `w` simply belongs to physical
//! way `w`. The drawn victim index *is* the physical frame index, which
//! is exactly what `gen_range` produces in the direct simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use occache_trace::MemRef;

use crate::config::{CacheConfig, ReplacementPolicy};
use crate::metrics::Metrics;

use super::{
    ClassState, CounterBank, EngineCore, EngineKind, MultiSimError, SliceEngine, EMPTY_WAY,
    MAX_MULTISIM_CONFIGS,
};

/// The one-pass all-sizes Random engine: the random-replacement sibling
/// of [`AllSizesLruEngine`](super::AllSizesLruEngine), bit-identical to
/// running [`simulate`](crate::simulate) (equivalently,
/// `SubBlockCache::with_seed` at this engine's seed) per member
/// configuration.
///
/// Construct with [`AllSizesRandomEngine::with_seed`] over a slice of
/// Random-replacement configurations, or let
/// [`simulate_many_seeded`](super::simulate_many_seeded) dispatch here
/// from the slice's policy.
#[derive(Debug, Clone)]
pub struct AllSizesRandomEngine {
    core: EngineCore,
    /// Per class: occupied-way count per set (the direct simulator's
    /// `filled`), driving the first-empty-frame fill rule.
    filled: Vec<Vec<u16>>,
    /// Per class: the replacement generator every member cache of that
    /// class would have drawn from.
    rngs: Vec<StdRng>,
}

impl AllSizesRandomEngine {
    /// Builds an engine for a compatible slice of Random-replacement
    /// configurations, seeding each residency class's generator with
    /// `seed` — pass [`DEFAULT_RANDOM_SEED`](crate::DEFAULT_RANDOM_SEED)
    /// to match [`simulate`](crate::simulate).
    ///
    /// # Errors
    ///
    /// Returns a [`MultiSimError`] when the slice is empty or too wide,
    /// or a configuration needs an unsupported policy/geometry.
    pub fn with_seed(configs: &[CacheConfig], seed: u64) -> Result<Self, MultiSimError> {
        let core = EngineCore::new(configs, ReplacementPolicy::Random)?;
        let filled = core
            .classes
            .iter()
            .map(|c| vec![0u16; (c.mask + 1) as usize])
            .collect();
        let rngs = core
            .classes
            .iter()
            .map(|_| StdRng::seed_from_u64(seed))
            .collect();
        Ok(AllSizesRandomEngine { core, filled, rngs })
    }

    /// Builds an engine at the direct simulator's default seed.
    ///
    /// # Errors
    ///
    /// Returns a [`MultiSimError`] exactly as
    /// [`with_seed`](AllSizesRandomEngine::with_seed) would.
    pub fn new(configs: &[CacheConfig]) -> Result<Self, MultiSimError> {
        AllSizesRandomEngine::with_seed(configs, crate::DEFAULT_RANDOM_SEED)
    }

    /// Feeds a run of references through the engine, class by class.
    pub fn access_run(&mut self, refs: &[MemRef]) {
        self.core.decode_chunk(refs);
        let CounterBank {
            miss,
            evicted_blocks,
            evicted_referenced,
            ..
        } = &mut self.core.bank;
        for ((class, filled), rng) in self
            .core
            .classes
            .iter_mut()
            .zip(&mut self.filled)
            .zip(&mut self.rngs)
        {
            run_class(
                class,
                filled,
                rng,
                &self.core.scratch_addr,
                &self.core.scratch_lane,
                miss,
                evicted_blocks,
                evicted_referenced,
            );
        }
    }

    /// Zeroes every configuration's metrics while keeping cache *and
    /// generator* state — the warm-start discipline; the direct
    /// simulator's `reset_metrics` likewise leaves its generator alone.
    pub fn reset_metrics(&mut self) {
        self.core.reset_metrics();
    }

    /// Metrics accumulated so far, in the order of the configurations
    /// given to [`AllSizesRandomEngine::with_seed`].
    pub fn metrics(&self) -> Vec<Metrics> {
        self.core.metrics()
    }
}

/// One chunk through one residency class: probe physically, fill the
/// first empty way, or replace the drawn way in place.
#[allow(clippy::too_many_arguments)] // mirrors the shared runner signatures
fn run_class(
    class: &mut ClassState,
    filled: &mut [u16],
    rng: &mut StdRng,
    addrs: &[u64],
    lanes: &[u8],
    miss: &mut [[u64; MAX_MULTISIM_CONFIGS]; 2],
    evicted_blocks: &mut [u64; MAX_MULTISIM_CONFIGS],
    evicted_referenced: &mut [u64; MAX_MULTISIM_CONFIGS],
) {
    let ClassState {
        shift,
        mask,
        assoc,
        meta,
        data,
        ..
    } = class;
    let shift = *shift;
    let set_mask = *mask;
    let ways = *assoc;
    let m = meta.len();
    let row_words = ways * (1 + m);
    for (&a, &lane) in addrs.iter().zip(lanes) {
        let block = a >> shift;
        let set = (block & set_mask) as usize;
        let base = set * row_words;
        let row = &mut data[base..base + row_words];
        // Probe every way (sentinels never match; resident block
        // numbers are distinct, so no early exit is needed).
        let mut j = usize::MAX;
        #[allow(clippy::needless_range_loop)] // select scan: stay branch-free
        for t in 0..ways {
            if row[t] == block {
                j = t;
            }
        }
        let hit = j != usize::MAX;
        // Hit way; else first empty frame in fill order; else the
        // generator's draw — consumed *only* on a full-set miss, which
        // is what keeps the draw sequence identical to every member
        // cache's own generator.
        let way = if hit {
            j
        } else if usize::from(filled[set]) < ways {
            filled[set] += 1;
            usize::from(filled[set]) - 1
        } else {
            rng.gen_range(0..ways)
        };
        let mrow = ways + way * m;
        if !hit && row[way] != EMPTY_WAY {
            // Evicting a real block: record its referenced sub-blocks
            // for every member configuration before the refill below
            // overwrites the victim's masks.
            for (w, sm) in meta.iter().enumerate() {
                let si = usize::from(sm.si);
                evicted_blocks[si] += 1;
                evicted_referenced[si] += u64::from(row[mrow + w].count_ones());
            }
        }
        row[way] = block;
        let keep = u64::from(hit).wrapping_neg();
        let miss_ctr = &mut miss[usize::from(lane)];
        for (w, sm) in meta.iter().enumerate() {
            let bit = 1u64 << ((a >> sm.sub_shift) & sm.slot_mask);
            let old = row[mrow + w] & keep;
            miss_ctr[usize::from(sm.si) & (MAX_MULTISIM_CONFIGS - 1)] += u64::from(old & bit == 0);
            row[mrow + w] = old | bit;
        }
    }
}

impl SliceEngine for AllSizesRandomEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Random
    }

    fn access_run(&mut self, refs: &[MemRef]) {
        AllSizesRandomEngine::access_run(self, refs);
    }

    fn reset_metrics(&mut self) {
        AllSizesRandomEngine::reset_metrics(self);
    }

    fn metrics(&self) -> Vec<Metrics> {
        AllSizesRandomEngine::metrics(self)
    }

    fn clone_box(&self) -> Box<dyn SliceEngine> {
        Box::new(self.clone())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{cfg_policy, mixed_trace};
    use super::*;
    use crate::multisim::{simulate_many, simulate_many_seeded};
    use crate::{simulate, simulate_seeded};

    fn rnd(net: u64, block: u64, sub: u64) -> CacheConfig {
        cfg_policy(net, block, sub, ReplacementPolicy::Random)
    }

    #[test]
    fn matches_direct_simulation_across_sizes() {
        let configs = [
            rnd(64, 16, 8),
            rnd(256, 16, 8),
            rnd(1024, 16, 8),
            rnd(256, 16, 4),
            rnd(256, 32, 8),
        ];
        let trace = mixed_trace(20_000, 4096);
        let all = simulate_many(&configs, trace.iter().copied(), 0).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 0);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn matches_direct_simulation_with_warmup() {
        let configs = [rnd(64, 8, 2), rnd(256, 8, 2), rnd(1024, 8, 2)];
        let trace = mixed_trace(10_000, 2048);
        let all = simulate_many(&configs, trace.iter().copied(), 1_000).unwrap();
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 1_000);
            assert_eq!(*metrics, direct, "{config}");
        }
    }

    #[test]
    fn explicit_seeds_match_seeded_direct_simulation() {
        let configs = [rnd(64, 16, 8), rnd(256, 16, 8)];
        let trace = mixed_trace(10_000, 2048);
        for seed in [0u64, 9, 0xdead_beef] {
            let all = simulate_many_seeded(&configs, trace.iter().copied(), 0, seed).unwrap();
            for (config, metrics) in configs.iter().zip(&all) {
                let direct = simulate_seeded(*config, trace.iter().copied(), 0, seed);
                assert_eq!(*metrics, direct, "{config} seed {seed}");
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let configs = [rnd(64, 16, 8), rnd(256, 16, 8), rnd(1024, 16, 8)];
        let trace = mixed_trace(15_000, 4096);
        let a = simulate_many(&configs, trace.iter().copied(), 500).unwrap();
        let b = simulate_many(&configs, trace.iter().copied(), 500).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_lru_members() {
        let lru = cfg_policy(64, 8, 4, ReplacementPolicy::Lru);
        assert!(matches!(
            AllSizesRandomEngine::new(&[lru]),
            Err(MultiSimError::Unsupported { .. })
        ));
    }
}
