//! The sub-block cache simulator.

use rand::rngs::StdRng;
use rand::SeedableRng;

use occache_trace::{AccessKind, Address};

use crate::config::{CacheConfig, FetchPolicy, WritePolicy};
use crate::frame::Frame;
use crate::metrics::Metrics;
use crate::set::CacheSet;

/// What happened on one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// Block resident and the referenced sub-block valid.
    Hit,
    /// Block resident but the referenced sub-block had to be fetched
    /// (the extra misses sub-block placement introduces, §3.1).
    SubBlockMiss,
    /// Block not resident: a frame was (re)allocated and the sub-block
    /// fetched.
    BlockMiss,
}

impl AccessOutcome {
    /// Whether the access counts as a miss (anything but a full hit).
    pub const fn is_miss(self) -> bool {
        !matches!(self, AccessOutcome::Hit)
    }
}

/// A set-associative cache with sub-block placement — the organisation the
/// paper studies. A conventional cache is the special case
/// `sub_block_size == block_size`.
///
/// ```
/// use occache_core::{AccessOutcome, CacheConfig, SubBlockCache};
/// use occache_trace::{AccessKind, Address};
///
/// let config = CacheConfig::builder()
///     .net_size(256)
///     .block_size(16)
///     .sub_block_size(4)
///     .word_size(4)
///     .build()?;
/// let mut cache = SubBlockCache::new(config);
///
/// let a = Address::new(0x100);
/// assert_eq!(cache.access(a, AccessKind::DataRead), AccessOutcome::BlockMiss);
/// assert_eq!(cache.access(a, AccessKind::DataRead), AccessOutcome::Hit);
/// // Same block, different sub-block: tag matches but data is absent.
/// let b = Address::new(0x104);
/// assert_eq!(cache.access(b, AccessKind::DataRead), AccessOutcome::SubBlockMiss);
/// # Ok::<(), occache_core::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SubBlockCache {
    config: CacheConfig,
    sets: Vec<CacheSet>,
    metrics: Metrics,
    rng: StdRng,
    subs_per_block: u32,
}

impl SubBlockCache {
    /// Creates a cache with a fixed default seed for Random replacement.
    pub fn new(config: CacheConfig) -> Self {
        SubBlockCache::with_seed(config, crate::DEFAULT_RANDOM_SEED)
    }

    /// Creates a cache seeding the Random-replacement generator with `seed`.
    pub fn with_seed(config: CacheConfig, seed: u64) -> Self {
        let num_sets = config.num_sets() as usize;
        let ways = config.effective_associativity() as usize;
        SubBlockCache {
            config,
            sets: (0..num_sets).map(|_| CacheSet::new(ways)).collect(),
            metrics: Metrics::new(config.word_size()),
            rng: StdRng::seed_from_u64(seed),
            subs_per_block: config.sub_blocks_per_block() as u32,
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Zeroes the metrics while keeping cache contents — the warm-start
    /// discipline of §4.2.2.
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Invalidates all cache contents and zeroes the metrics.
    pub fn flush(&mut self) {
        let ways = self.config.effective_associativity() as usize;
        for set in &mut self.sets {
            *set = CacheSet::new(ways);
        }
        self.metrics.reset();
    }

    /// Whether the sub-block containing `addr` is resident and valid.
    pub fn contains(&self, addr: Address) -> bool {
        let (set_idx, block_num, sub_idx) = self.locate(addr);
        self.sets[set_idx]
            .find(block_num)
            .is_some_and(|fi| self.sets[set_idx].frame(fi).is_valid(sub_idx))
    }

    /// Whether the *block* containing `addr` is resident (its data may
    /// still be only partially valid).
    pub fn block_resident(&self, addr: Address) -> bool {
        let (set_idx, block_num, _) = self.locate(addr);
        self.sets[set_idx].find(block_num).is_some()
    }

    fn locate(&self, addr: Address) -> (usize, u64, u32) {
        let block_num = addr.block_number(self.config.block_size());
        let set_idx = (block_num % self.config.num_sets()) as usize;
        let sub_idx =
            (addr.offset_in_block(self.config.block_size()) / self.config.sub_block_size()) as u32;
        (set_idx, block_num, sub_idx)
    }

    /// Presents one reference to the cache and returns what happened.
    ///
    /// Data writes update cache state (and the auxiliary write-traffic
    /// counters) but are excluded from the miss/traffic ratios, following
    /// the paper's metric definition.
    pub fn access(&mut self, addr: Address, kind: AccessKind) -> AccessOutcome {
        let (set_idx, block_num, sub_idx) = self.locate(addr);
        let counted = kind.is_counted();
        let policy = self.config.replacement();
        let fetch = self.config.fetch();
        let sub_size = self.config.sub_block_size();
        let subs_per_block = self.subs_per_block;
        let set = &mut self.sets[set_idx];

        let outcome = match set.find(block_num) {
            Some(fi) => {
                set.touch(fi, policy);
                let frame = set.frame_mut(fi);
                frame.set_referenced(sub_idx);
                if frame.is_valid(sub_idx) {
                    self.metrics.record_access(counted, true);
                    if frame.take_prefetched(sub_idx) {
                        self.metrics.record_prefetch_use();
                        // Tagged prefetch: first use of a prefetched
                        // sub-block keeps the stream one step ahead.
                        if fetch == (FetchPolicy::PrefetchNext { tagged: true }) {
                            let next = sub_idx + 1;
                            if next < subs_per_block && !frame.is_valid(next) {
                                frame.set_valid(next);
                                frame.set_prefetched(next);
                                self.metrics.record_fetch(counted, sub_size, 1, 0);
                                self.metrics.record_prefetch();
                            }
                        }
                    }
                    AccessOutcome::Hit
                } else {
                    let (bytes, subs, redundant, prefetched) =
                        fill(frame, sub_idx, fetch, subs_per_block, sub_size);
                    self.metrics.record_access(counted, false);
                    self.metrics.record_fetch(counted, bytes, subs, redundant);
                    for _ in 0..prefetched {
                        self.metrics.record_prefetch();
                    }
                    AccessOutcome::SubBlockMiss
                }
            }
            None => {
                let vi = set.choose_victim(policy, &mut self.rng);
                let frame = set.frame_mut(vi);
                if frame.present {
                    let slots = u64::from(subs_per_block);
                    let referenced = u64::from(frame.referenced.count_ones());
                    self.metrics.record_eviction(slots, slots - referenced);
                    if self.config.write_policy() == WritePolicy::CopyBack {
                        let dirty = u64::from(frame.dirty.count_ones());
                        self.metrics.record_write_back(dirty * sub_size);
                    }
                }
                frame.install(block_num);
                frame.set_referenced(sub_idx);
                let (bytes, subs, redundant, prefetched) =
                    fill(frame, sub_idx, fetch, subs_per_block, sub_size);
                self.metrics.record_access(counted, false);
                self.metrics.record_fetch(counted, bytes, subs, redundant);
                for _ in 0..prefetched {
                    self.metrics.record_prefetch();
                }
                AccessOutcome::BlockMiss
            }
        };

        if kind == AccessKind::DataWrite {
            let (set_idx, block_num, sub_idx) = self.locate(addr);
            let set = &mut self.sets[set_idx];
            if let Some(fi) = set.find(block_num) {
                set.frame_mut(fi).set_dirty(sub_idx);
            }
            if self.config.write_policy() == WritePolicy::WriteThrough {
                self.metrics.record_write_through(self.config.word_size());
            }
        }

        outcome
    }

    /// Runs an entire reference sequence through the cache.
    pub fn run<I>(&mut self, refs: I)
    where
        I: IntoIterator<Item = occache_trace::MemRef>,
    {
        for r in refs {
            self.access(r.address(), r.kind());
        }
    }
}

/// Loads data for a miss on `sub_idx`, returning
/// `(bytes_fetched, sub_blocks_fetched, redundant_sub_blocks, prefetched_sub_blocks)`.
fn fill(
    frame: &mut Frame,
    sub_idx: u32,
    fetch: FetchPolicy,
    subs_per_block: u32,
    sub_size: u64,
) -> (u64, u64, u64, u64) {
    match fetch {
        FetchPolicy::Demand => {
            frame.set_valid(sub_idx);
            (sub_size, 1, 0, 0)
        }
        FetchPolicy::PrefetchNext { .. } => {
            frame.set_valid(sub_idx);
            let next = sub_idx + 1;
            if next < subs_per_block && !frame.is_valid(next) {
                frame.set_valid(next);
                frame.set_prefetched(next);
                (2 * sub_size, 2, 0, 1)
            } else {
                (sub_size, 1, 0, 0)
            }
        }
        FetchPolicy::LoadForward { remember_valid } => {
            let mut fetched = 0u64;
            let mut redundant = 0u64;
            for i in sub_idx..subs_per_block {
                if frame.is_valid(i) {
                    // The simple scheme re-fetches resident sub-blocks; the
                    // optimized scheme remembers and skips them.
                    if !remember_valid {
                        fetched += 1;
                        redundant += 1;
                    }
                } else {
                    frame.set_valid(i);
                    fetched += 1;
                }
            }
            (fetched * sub_size, fetched, redundant, 0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReplacementPolicy;

    fn cfg(net: u64, block: u64, sub: u64) -> CacheConfig {
        CacheConfig::builder()
            .net_size(net)
            .block_size(block)
            .sub_block_size(sub)
            .word_size(2)
            .build()
            .unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SubBlockCache::new(cfg(64, 8, 4));
        let a = Address::new(0x40);
        assert_eq!(c.access(a, AccessKind::DataRead), AccessOutcome::BlockMiss);
        assert_eq!(c.access(a, AccessKind::DataRead), AccessOutcome::Hit);
        assert!(c.contains(a));
    }

    #[test]
    fn sub_block_miss_within_resident_block() {
        let mut c = SubBlockCache::new(cfg(64, 8, 2));
        c.access(Address::new(0), AccessKind::DataRead);
        assert!(c.block_resident(Address::new(6)));
        assert!(!c.contains(Address::new(6)));
        assert_eq!(
            c.access(Address::new(6), AccessKind::DataRead),
            AccessOutcome::SubBlockMiss
        );
        assert!(c.contains(Address::new(6)));
    }

    #[test]
    fn demand_fetch_loads_exactly_one_sub_block() {
        let mut c = SubBlockCache::new(cfg(64, 8, 2));
        c.access(Address::new(0), AccessKind::DataRead);
        assert_eq!(c.metrics().fetch_bytes(), 2);
        assert!(
            !c.contains(Address::new(2)),
            "neighbour sub-block not loaded"
        );
    }

    #[test]
    fn load_forward_fills_to_end_of_block() {
        let config = CacheConfig::builder()
            .net_size(64)
            .block_size(16)
            .sub_block_size(2)
            .word_size(2)
            .fetch(FetchPolicy::LOAD_FORWARD)
            .build()
            .unwrap();
        let mut c = SubBlockCache::new(config);
        // Miss on sub-block 2 of 8 → loads sub-blocks 2..8 (6 of them).
        c.access(Address::new(4), AccessKind::DataRead);
        assert_eq!(c.metrics().fetch_bytes(), 12);
        assert!(
            !c.contains(Address::new(0)),
            "backward sub-blocks untouched"
        );
        assert!(!c.contains(Address::new(2)));
        for off in [4u64, 6, 8, 10, 12, 14] {
            assert!(c.contains(Address::new(off)), "offset {off}");
        }
    }

    #[test]
    fn redundant_load_forward_refetches_valid_data() {
        let config = CacheConfig::builder()
            .net_size(64)
            .block_size(16)
            .sub_block_size(2)
            .word_size(2)
            .fetch(FetchPolicy::LOAD_FORWARD)
            .build()
            .unwrap();
        let mut c = SubBlockCache::new(config);
        c.access(Address::new(8), AccessKind::DataRead); // loads subs 4..8
                                                         // Backward reference: miss on sub 0 → redundant loads of subs 4..8.
        c.access(Address::new(0), AccessKind::DataRead);
        assert_eq!(c.metrics().redundant_sub_loads(), 4);
        assert_eq!(c.metrics().fetch_bytes(), 8 + 16);
    }

    #[test]
    fn optimized_load_forward_skips_valid_data() {
        let config = CacheConfig::builder()
            .net_size(64)
            .block_size(16)
            .sub_block_size(2)
            .word_size(2)
            .fetch(FetchPolicy::LoadForward {
                remember_valid: true,
            })
            .build()
            .unwrap();
        let mut c = SubBlockCache::new(config);
        c.access(Address::new(8), AccessKind::DataRead);
        c.access(Address::new(0), AccessKind::DataRead);
        assert_eq!(c.metrics().redundant_sub_loads(), 0);
        assert_eq!(c.metrics().fetch_bytes(), 8 + 8);
    }

    #[test]
    fn prefetch_on_miss_loads_the_next_sub_block() {
        let config = CacheConfig::builder()
            .net_size(64)
            .block_size(16)
            .sub_block_size(4)
            .word_size(2)
            .fetch(FetchPolicy::PrefetchNext { tagged: false })
            .build()
            .unwrap();
        let mut c = SubBlockCache::new(config);
        c.access(Address::new(0), AccessKind::DataRead);
        assert!(c.contains(Address::new(4)), "next sub-block prefetched");
        assert!(!c.contains(Address::new(8)), "only one ahead");
        assert_eq!(c.metrics().fetch_bytes(), 8);
        assert_eq!(c.metrics().prefetched_subs(), 1);
        // Using the prefetched sub-block is a hit and counts as a use.
        assert_eq!(
            c.access(Address::new(4), AccessKind::DataRead),
            AccessOutcome::Hit
        );
        assert_eq!(c.metrics().prefetch_uses(), 1);
        assert_eq!(c.metrics().prefetch_pollution(), 0.0);
    }

    #[test]
    fn tagged_prefetch_stays_ahead_of_a_sequential_stream() {
        let config = CacheConfig::builder()
            .net_size(64)
            .block_size(16)
            .sub_block_size(2)
            .word_size(2)
            .fetch(FetchPolicy::PrefetchNext { tagged: true })
            .build()
            .unwrap();
        let mut c = SubBlockCache::new(config);
        // Walk a whole block: one miss, the rest ride the prefetch train.
        for off in (0..16).step_by(2) {
            c.access(Address::new(off), AccessKind::DataRead);
        }
        assert_eq!(
            c.metrics().misses(),
            1,
            "only the head of the stream misses"
        );
        assert_eq!(
            c.metrics().fetch_bytes(),
            16,
            "every byte still crossed the bus"
        );
    }

    #[test]
    fn prefetch_at_end_of_block_does_nothing() {
        let config = CacheConfig::builder()
            .net_size(64)
            .block_size(16)
            .sub_block_size(4)
            .word_size(2)
            .fetch(FetchPolicy::PrefetchNext { tagged: false })
            .build()
            .unwrap();
        let mut c = SubBlockCache::new(config);
        // Miss on the last sub-block: nothing beyond the block to fetch.
        c.access(Address::new(12), AccessKind::DataRead);
        assert_eq!(c.metrics().fetch_bytes(), 4);
        assert_eq!(c.metrics().prefetched_subs(), 0);
    }

    #[test]
    fn unused_prefetches_count_as_pollution() {
        let config = CacheConfig::builder()
            .net_size(16)
            .block_size(8)
            .sub_block_size(4)
            .associativity(1)
            .word_size(2)
            .fetch(FetchPolicy::PrefetchNext { tagged: false })
            .build()
            .unwrap();
        let mut c = SubBlockCache::new(config);
        c.access(Address::new(0), AccessKind::DataRead); // prefetches sub 1, never used
        c.access(Address::new(16), AccessKind::DataRead); // conflicting block
        assert_eq!(c.metrics().prefetched_subs(), 2);
        assert_eq!(c.metrics().prefetch_uses(), 0);
        assert_eq!(c.metrics().prefetch_pollution(), 1.0);
    }

    #[test]
    fn writes_are_excluded_from_metrics() {
        let mut c = SubBlockCache::new(cfg(64, 8, 4));
        c.access(Address::new(0), AccessKind::DataWrite);
        assert_eq!(c.metrics().accesses(), 0);
        assert_eq!(c.metrics().misses(), 0);
        assert_eq!(c.metrics().fetch_bytes(), 0);
        assert_eq!(c.metrics().write_accesses(), 1);
        assert_eq!(c.metrics().write_misses(), 1);
        // The write still allocated state: a read of the same word hits.
        assert_eq!(
            c.access(Address::new(0), AccessKind::DataRead),
            AccessOutcome::Hit
        );
    }

    #[test]
    fn write_through_accounts_word_per_write() {
        let mut c = SubBlockCache::new(cfg(64, 8, 4));
        c.access(Address::new(0), AccessKind::DataWrite);
        c.access(Address::new(0), AccessKind::DataWrite);
        assert_eq!(c.metrics().write_through_bytes(), 4);
        assert_eq!(c.metrics().write_back_bytes(), 0);
    }

    #[test]
    fn copy_back_flushes_dirty_sub_blocks_on_eviction() {
        let config = CacheConfig::builder()
            .net_size(16)
            .block_size(8)
            .sub_block_size(4)
            .associativity(1)
            .word_size(2)
            .write_policy(WritePolicy::CopyBack)
            .build()
            .unwrap();
        let mut c = SubBlockCache::new(config);
        c.access(Address::new(0), AccessKind::DataWrite); // dirty sub 0 of block 0
                                                          // Conflict: block mapping to the same (direct-mapped) set 0.
        c.access(Address::new(16), AccessKind::DataRead);
        assert_eq!(c.metrics().write_back_bytes(), 4);
        assert_eq!(c.metrics().write_through_bytes(), 0);
    }

    #[test]
    fn lru_eviction_order_at_block_granularity() {
        // Direct-mapped 2-set cache: blocks 0 and 2 collide in set 0.
        let config = CacheConfig::builder()
            .net_size(16)
            .block_size(8)
            .sub_block_size(8)
            .associativity(1)
            .word_size(2)
            .build()
            .unwrap();
        let mut c = SubBlockCache::new(config);
        c.access(Address::new(0), AccessKind::DataRead);
        c.access(Address::new(16), AccessKind::DataRead); // evicts block 0
        assert!(!c.block_resident(Address::new(0)));
        assert_eq!(
            c.access(Address::new(0), AccessKind::DataRead),
            AccessOutcome::BlockMiss
        );
    }

    #[test]
    fn four_way_lru_keeps_recently_used() {
        let config = CacheConfig::builder()
            .net_size(32)
            .block_size(8)
            .sub_block_size(8)
            .associativity(4)
            .word_size(2)
            .build()
            .unwrap();
        let mut c = SubBlockCache::new(config); // 1 set, 4 ways
        for blk in 0..4u64 {
            c.access(Address::new(blk * 8), AccessKind::DataRead);
        }
        // Re-touch block 0; block 1 is now LRU and must be the victim.
        c.access(Address::new(0), AccessKind::DataRead);
        c.access(Address::new(4 * 8), AccessKind::DataRead);
        assert!(c.block_resident(Address::new(0)));
        assert!(!c.block_resident(Address::new(8)));
    }

    #[test]
    fn eviction_statistics_track_unreferenced_sub_blocks() {
        let config = CacheConfig::builder()
            .net_size(16)
            .block_size(8)
            .sub_block_size(2)
            .associativity(1)
            .word_size(2)
            .build()
            .unwrap();
        let mut c = SubBlockCache::new(config);
        c.access(Address::new(0), AccessKind::DataRead); // 1 of 4 subs referenced
        c.access(Address::new(16), AccessKind::DataRead); // evicts block 0
        assert_eq!(c.metrics().evicted_blocks(), 1);
        assert!((c.metrics().unreferenced_sub_block_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn flush_empties_cache_and_metrics() {
        let mut c = SubBlockCache::new(cfg(64, 8, 4));
        c.access(Address::new(0), AccessKind::DataRead);
        c.flush();
        assert!(!c.block_resident(Address::new(0)));
        assert_eq!(c.metrics().accesses(), 0);
    }

    #[test]
    fn reset_metrics_preserves_contents() {
        let mut c = SubBlockCache::new(cfg(64, 8, 4));
        c.access(Address::new(0), AccessKind::DataRead);
        c.reset_metrics();
        assert!(c.contains(Address::new(0)));
        assert_eq!(
            c.access(Address::new(0), AccessKind::DataRead),
            AccessOutcome::Hit
        );
        assert_eq!(c.metrics().accesses(), 1);
        assert_eq!(c.metrics().misses(), 0);
    }

    #[test]
    fn run_consumes_a_trace() {
        use occache_trace::MemRef;
        let mut c = SubBlockCache::new(cfg(64, 8, 4));
        c.run(vec![MemRef::read(0), MemRef::read(0), MemRef::read(8)]);
        assert_eq!(c.metrics().accesses(), 3);
        assert_eq!(c.metrics().misses(), 2);
    }

    #[test]
    fn random_replacement_is_deterministic_per_seed() {
        let config = CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(8)
            .replacement(ReplacementPolicy::Random)
            .word_size(2)
            .build()
            .unwrap();
        let trace: Vec<_> = (0..200u64)
            .map(|i| occache_trace::MemRef::read((i * 37) % 512 * 2))
            .collect();
        let mut a = SubBlockCache::with_seed(config, 9);
        let mut b = SubBlockCache::with_seed(config, 9);
        a.run(trace.clone());
        b.run(trace);
        assert_eq!(a.metrics().misses(), b.metrics().misses());
    }

    #[test]
    fn miss_ratio_traffic_identity_for_demand() {
        // For demand fetch: traffic ratio == miss ratio × (sub / word).
        let mut c = SubBlockCache::new(cfg(256, 16, 8));
        let trace: Vec<_> = (0..5000u64)
            .map(|i| occache_trace::MemRef::read((i * 71) % 2048 * 2))
            .collect();
        c.run(trace);
        let m = c.metrics();
        let expected = m.miss_ratio() * 8.0 / 2.0;
        assert!((m.traffic_ratio() - expected).abs() < 1e-12);
    }
}
