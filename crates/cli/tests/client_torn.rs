//! Property tests for the loadgen HTTP response reader: a torn or
//! truncated response — any strict prefix of a valid wire image — must
//! come back as an error (which the resilience layer turns into a
//! reconnect-and-retry), never a panic and never a partial success
//! passed off as complete. Arbitrary byte salad must never panic.

use std::io::Read as _;

use occache_cli::client::read_response_from;
use proptest::prelude::*;

const PAD_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";

/// Builds a valid HTTP/1.1 response wire image.
fn wire(status: u16, retry_after: Option<u64>, pad: &str, body: &str) -> String {
    let retry = retry_after.map_or(String::new(), |s| format!("Retry-After: {s}\r\n"));
    format!(
        "HTTP/1.1 {status} Whatever\r\nContent-Length: {}\r\n{retry}X-Pad: {pad}\r\n\r\n{body}",
        body.len()
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary bytes must produce a verdict, never a panic.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(0u8..=255, 192),
        len in 0usize..=192,
    ) {
        let _ = read_response_from(&mut &bytes[..len]);
    }

    /// Every strict prefix of a valid response is an error; the full
    /// wire parses back exactly.
    #[test]
    fn torn_responses_always_error_and_full_ones_round_trip(
        status in 100u16..=599,
        retry_raw in 0u64..=130,
        pad_idx in proptest::collection::vec(0u8..=255, 16),
        pad_len in 0usize..=16,
        body_idx in proptest::collection::vec(0u8..=94, 64),
        body_len in 0usize..=64,
    ) {
        let retry_after = (retry_raw <= 120).then_some(retry_raw);
        let pad: String = pad_idx[..pad_len]
            .iter()
            .map(|&i| PAD_CHARS[i as usize % PAD_CHARS.len()] as char)
            .collect();
        let body: String = body_idx[..body_len]
            .iter()
            .map(|&i| (b' ' + i) as char)
            .collect();
        let text = wire(status, retry_after, &pad, &body);
        let bytes = text.as_bytes();
        for cut in 0..bytes.len() {
            let torn = read_response_from(&mut bytes.take(cut as u64));
            prop_assert!(
                torn.is_err(),
                "prefix of {} of {} bytes parsed as a response",
                cut,
                bytes.len()
            );
        }
        match read_response_from(&mut &bytes[..]) {
            Ok(response) => {
                prop_assert_eq!(response.status, status);
                prop_assert_eq!(response.body, body);
                prop_assert_eq!(response.retry_after, retry_after);
            }
            Err(e) => prop_assert!(false, "full wire failed to parse: {}", e),
        }
    }
}
