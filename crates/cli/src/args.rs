//! A small, dependency-free command-line parser.
//!
//! Supports `--flag value`, `--flag=value`, boolean switches, and
//! positional arguments; unknown flags are errors. Just enough for the
//! three binaries — deliberately not a general argument framework.

use std::collections::{HashMap, HashSet};

use crate::CliError;

/// Parsed command line: flag values, boolean switches, positionals.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    values: HashMap<String, String>,
    switches: HashSet<String>,
    positional: Vec<String>,
}

impl Parsed {
    /// The raw value of `--name`, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Parses the value of `--name` into `T`, or returns `default` when
    /// the flag is absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the value does not parse.
    pub fn value_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.value(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// Parses the value of `--name` into `T` if present.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] when the value does not parse.
    pub fn value_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.value(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// Whether the boolean switch `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.contains(name)
    }

    /// The positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

/// Parses `argv` (without the program name) against the declared flags.
///
/// # Errors
///
/// Returns [`CliError::Usage`] on unknown flags, missing values, or a
/// value supplied to a boolean switch.
pub fn parse<S: AsRef<str>>(
    argv: &[S],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<Parsed, CliError> {
    let mut parsed = Parsed::default();
    let mut iter = argv.iter().map(AsRef::as_ref).peekable();
    while let Some(token) = iter.next() {
        if let Some(flag) = token.strip_prefix("--") {
            let (name, inline_value) = match flag.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (flag, None),
            };
            if bool_flags.contains(&name) {
                if let Some(v) = inline_value {
                    return Err(CliError::Usage(format!(
                        "--{name} is a switch and takes no value (got {v:?})"
                    )));
                }
                parsed.switches.insert(name.to_string());
            } else if value_flags.contains(&name) {
                let value = match inline_value {
                    Some(v) => v,
                    None => iter
                        .next()
                        .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?
                        .to_string(),
                };
                if parsed.values.insert(name.to_string(), value).is_some() {
                    return Err(CliError::Usage(format!("--{name} given twice")));
                }
            } else {
                return Err(CliError::Usage(format!("unknown flag --{name}")));
            }
        } else {
            parsed.positional.push(token.to_string());
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALUES: &[&str] = &["net", "block"];
    const BOOLS: &[&str] = &["nibble"];

    #[test]
    fn parses_space_and_equals_forms() {
        let p = parse(&["--net", "1024", "--block=16"], VALUES, BOOLS).unwrap();
        assert_eq!(p.value("net"), Some("1024"));
        assert_eq!(p.value("block"), Some("16"));
    }

    #[test]
    fn parses_switches_and_positionals() {
        let p = parse(&["trace.din", "--nibble"], VALUES, BOOLS).unwrap();
        assert!(p.switch("nibble"));
        assert_eq!(p.positional(), ["trace.din"]);
    }

    #[test]
    fn rejects_unknown_flags() {
        let e = parse(&["--bogus"], VALUES, BOOLS).unwrap_err();
        assert!(e.to_string().contains("--bogus"));
    }

    #[test]
    fn rejects_missing_value() {
        let e = parse(&["--net"], VALUES, BOOLS).unwrap_err();
        assert!(e.to_string().contains("needs a value"));
    }

    #[test]
    fn rejects_duplicate_flags() {
        let e = parse(&["--net", "1", "--net", "2"], VALUES, BOOLS).unwrap_err();
        assert!(e.to_string().contains("twice"));
    }

    #[test]
    fn rejects_value_on_switch() {
        let e = parse(&["--nibble=yes"], VALUES, BOOLS).unwrap_err();
        assert!(e.to_string().contains("switch"));
    }

    #[test]
    fn typed_accessors() {
        let p = parse(&["--net", "1024"], VALUES, BOOLS).unwrap();
        assert_eq!(p.value_or("net", 0u64).unwrap(), 1024);
        assert_eq!(p.value_or("block", 16u64).unwrap(), 16);
        assert_eq!(p.value_opt::<u64>("block").unwrap(), None);
        assert!(p.value_or::<u64>("net", 0).is_ok());
    }

    #[test]
    fn typed_accessor_rejects_garbage() {
        let p = parse(&["--net", "lots"], VALUES, BOOLS).unwrap();
        assert!(p.value_or("net", 0u64).is_err());
    }
}
