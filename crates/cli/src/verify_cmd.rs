//! `occache-verify` — check a results directory end to end.
//!
//! Re-hashes every file against `MANIFEST.json`, scans every checkpoint
//! journal strictly, and re-simulates a deterministic sample of
//! journalled points through the direct simulator, comparing bit-exactly.
//! Also reachable as `occache sweep --verify`.

use occache_experiments::report::results_dir;
use occache_experiments::verify::{verify_dir, VerifyOptions};

use crate::args::parse;
use crate::error::CliError;

/// Usage text shown for `--help` and usage errors.
pub const USAGE: &str = "\
occache-verify: check results against MANIFEST.json and the checkpoint journals

USAGE:
    occache-verify [OPTIONS]
    occache sweep --verify [OPTIONS]

OPTIONS:
    --dir <PATH>      results directory to verify [default: $OCCACHE_RESULTS or results/]
    --sample <N>      journalled points to re-simulate per journal [default: 4]
    --refs <N>        references per trace for re-simulation; must match the
                      run's OCCACHE_REFS for journal keys to line up
    --no-resim        skip re-simulation (hash and journal checks still run)
    --help            print this help

EXIT STATUS:
    0 when everything checks out, 1 when any file, journal record or
    re-simulated point fails, 2 on usage or i/o errors.
";

const VALUE_FLAGS: &[&str] = &["dir", "sample", "refs"];
// "verify" is tolerated (as a no-op) so `occache sweep --verify ...`
// can forward its argv here unchanged.
const BOOL_FLAGS: &[&str] = &["help", "no-resim", "verify"];

/// Runs the verify command. A passing report comes back as `Ok`; a
/// failing one as [`CliError::Integrity`] carrying the full report so
/// the binary can print it and exit nonzero.
///
/// # Errors
///
/// [`CliError::Usage`] for bad flags, [`CliError::Io`] for filesystem
/// problems (including lock contention with a live run), and
/// [`CliError::Integrity`] when verification fails.
pub fn run<S: AsRef<str>>(argv: &[S]) -> Result<String, CliError> {
    let parsed = parse(argv, VALUE_FLAGS, BOOL_FLAGS)?;
    if parsed.switch("help") {
        return Ok(USAGE.to_string());
    }
    if let Some(extra) = parsed.positional().first() {
        return Err(CliError::Usage(format!(
            "unexpected positional argument '{extra}'"
        )));
    }
    let mut opts = VerifyOptions::from_env();
    opts.sample = parsed.value_or("sample", opts.sample)?;
    opts.refs = parsed.value_or("refs", opts.refs)?;
    opts.resim = !parsed.switch("no-resim");
    let dir = parsed
        .value("dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(results_dir);

    let report = verify_dir(&dir, &opts)?;
    let mut rendered = format!("verifying {}\n{}", dir.display(), report.render());
    if report.is_ok() {
        Ok(rendered)
    } else {
        rendered.truncate(rendered.trim_end().len());
        Err(CliError::Integrity(rendered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("occache-verifycmd-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["--help"]).unwrap();
        assert!(out.contains("occache-verify"));
        assert!(out.contains("--no-resim"));
    }

    #[test]
    fn bad_sample_is_a_usage_error() {
        let err = run(&["--sample", "many"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let err = run(&["extra-arg"]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn empty_dir_fails_for_want_of_a_manifest() {
        let dir = temp_dir("nomanifest");
        let err = run(&["--dir", dir.to_str().unwrap()]).unwrap_err();
        match err {
            CliError::Integrity(report) => {
                assert!(report.contains("MANIFEST.json"));
                assert!(report.contains("verify: FAILED"));
            }
            other => panic!("expected Integrity, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn intact_results_pass_and_a_flipped_byte_fails() {
        let dir = temp_dir("roundtrip");
        let contents = "block,miss\n32,0.05\n";
        occache_experiments::report::write_result_in(&dir, "t.csv", contents).unwrap();
        let entry = occache_experiments::manifest::ManifestEntry::of("t.csv", contents, "t", 0, 0);
        occache_experiments::manifest::record(&dir, "t", vec![entry]).unwrap();
        let out = run(&["--dir", dir.to_str().unwrap(), "--no-resim"]).unwrap();
        assert!(out.contains("verify: OK"));
        // Flip one byte.
        let mut bytes = fs::read(dir.join("t.csv")).unwrap();
        bytes[3] ^= 1;
        fs::write(dir.join("t.csv"), &bytes).unwrap();
        let err = run(&["--dir", dir.to_str().unwrap(), "--no-resim"]).unwrap_err();
        match err {
            CliError::Integrity(report) => assert!(report.contains("t.csv")),
            other => panic!("expected Integrity, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
