//! Binary wrapper; the logic lives in `occache_cli::gen`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match occache_cli::gen::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            eprintln!("\n{}", occache_cli::gen::USAGE);
            std::process::exit(2);
        }
    }
}
