//! Binary wrapper; the logic lives in `occache_cli::verify_cmd`.
//!
//! Exit codes: 0 verified clean, 1 integrity failure (report on stdout),
//! 2 usage or i/o error.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match occache_cli::verify_cmd::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(occache_cli::CliError::Integrity(report)) => {
            println!("{report}");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("{e}");
            eprintln!("\n{}", occache_cli::verify_cmd::USAGE);
            std::process::exit(2);
        }
    }
}
