//! Binary wrapper; the logic lives in `occache_cli::sweep_cmd`.

fn main() {
    occache_experiments::interrupt::install();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match occache_cli::sweep_cmd::run(&argv) {
        Ok(report) => {
            print!("{report}");
            if occache_experiments::interrupt::requested() {
                eprintln!("sweep interrupted; partial results reported above");
                std::process::exit(i32::from(occache_experiments::interrupt::EXIT_INTERRUPTED));
            }
        }
        Err(e) => {
            eprintln!("{e}");
            eprintln!("\n{}", occache_cli::sweep_cmd::USAGE);
            std::process::exit(2);
        }
    }
}
