//! Binary wrapper; the logic lives in `occache_cli::sweep_cmd`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match occache_cli::sweep_cmd::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            eprintln!("\n{}", occache_cli::sweep_cmd::USAGE);
            std::process::exit(2);
        }
    }
}
