//! Binary wrapper; the logic lives in `occache_cli::sim`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match occache_cli::sim::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            eprintln!("\n{}", occache_cli::sim::USAGE);
            std::process::exit(2);
        }
    }
}
