//! Binary wrapper; the logic lives in `occache_cli::loadgen_cmd`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match occache_cli::loadgen_cmd::run(&argv) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            eprintln!("\n{}", occache_cli::loadgen_cmd::USAGE);
            std::process::exit(2);
        }
    }
}
