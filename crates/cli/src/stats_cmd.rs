//! `occache-stats`: locality characterisation of a trace or workload.

use std::fmt::Write as _;
use std::fs::File;
use std::io::Read;

use occache_trace::io::parse_trace_auto;
use occache_trace::{MemRef, TraceStats, WorkingSetCurve};
use occache_workloads::WorkloadSpec;

use crate::args::parse;
use crate::CliError;

/// Usage text for `occache-stats`.
pub const USAGE: &str = "\
occache-stats — locality statistics of a trace

USAGE:
  occache-stats [OPTIONS] [TRACE_FILE]

INPUT (one of):
  TRACE_FILE        text trace (`-` reads standard input)
  --workload NAME   a Table 2-5 synthetic workload (ED, GREP, spice, ...)

OPTIONS:
  --word BYTES      data-path word size              [2]
  --block BYTES     block granularity for working-set sizes [16]
  --refs N          max references                   [1000000]
  --seed N          synthetic workload seed          [0]
";

const VALUE_FLAGS: &[&str] = &["workload", "word", "block", "refs", "seed"];
const BOOL_FLAGS: &[&str] = &["help"];

/// Runs the command and returns the report to print.
///
/// # Errors
///
/// Returns a [`CliError`] on bad usage or unreadable/malformed traces.
pub fn run<S: AsRef<str>>(argv: &[S]) -> Result<String, CliError> {
    let parsed = parse(argv, VALUE_FLAGS, BOOL_FLAGS)?;
    if parsed.switch("help") {
        return Ok(USAGE.to_string());
    }
    let limit = parsed.value_or("refs", 1_000_000usize)?;
    let seed = parsed.value_or("seed", 0u64)?;
    let word = parsed.value_or("word", 2u64)?;
    let block = parsed.value_or("block", 16u64)?;
    if !word.is_power_of_two() || !block.is_power_of_two() {
        return Err(CliError::Usage(
            "--word/--block must be powers of two".into(),
        ));
    }

    let refs: Vec<MemRef> = match (parsed.value("workload"), parsed.positional()) {
        (Some(name), []) => {
            let spec = WorkloadSpec::by_name(name)
                .ok_or_else(|| CliError::Usage(format!("unknown workload {name:?}")))?;
            spec.generator(seed).take(limit).collect()
        }
        (None, [path]) if path == "-" => {
            let mut text = String::new();
            std::io::stdin().read_to_string(&mut text)?;
            let mut refs = parse_trace_auto(text.as_bytes())?;
            refs.truncate(limit);
            refs
        }
        (None, [path]) => {
            let mut refs = parse_trace_auto(File::open(path)?)?;
            refs.truncate(limit);
            refs
        }
        _ => {
            return Err(CliError::Usage(
                "give a trace file or --workload NAME (not both, not neither)".into(),
            ))
        }
    };

    let mut stats = TraceStats::new(word);
    let mut ws = WorkingSetCurve::new(block);
    for &r in &refs {
        stats.observe(r);
        ws.observe(r);
    }

    let mut out = String::new();
    let _ = writeln!(out, "references   : {}", stats.total());
    let _ = writeln!(
        out,
        "mix          : {:.1}% ifetch, {:.1}% read, {:.1}% write",
        stats.ifetch_fraction() * 100.0,
        stats.reads() as f64 / stats.total().max(1) as f64 * 100.0,
        stats.writes() as f64 / stats.total().max(1) as f64 * 100.0
    );
    let _ = writeln!(out, "footprint    : {} bytes", stats.footprint_bytes());
    let _ = writeln!(out, "mean i-run   : {:.1} words", stats.mean_ifetch_run());
    let _ = writeln!(out, "working set ({block}-byte blocks):");
    for (window, size) in ws.curve(&[100, 1_000, 10_000, 100_000]) {
        let _ = writeln!(
            out,
            "  s({window:>6}) = {size:8.0} blocks ({} bytes)",
            (size * block as f64) as u64
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_prints_usage() {
        assert!(run(&["--help"]).unwrap().contains("occache-stats"));
    }

    #[test]
    fn characterises_a_workload() {
        let out = run(&["--workload", "ED", "--refs", "20000"]).unwrap();
        assert!(out.contains("footprint"), "{out}");
        assert!(out.contains("working set"), "{out}");
    }

    #[test]
    fn requires_exactly_one_input() {
        assert!(run::<&str>(&[]).is_err());
        assert!(run(&["--workload", "ED", "file.din"]).is_err());
    }

    #[test]
    fn rejects_bad_granularity() {
        let e = run(&["--workload", "ED", "--block", "3"]).unwrap_err();
        assert!(e.to_string().contains("powers of two"));
    }
}
