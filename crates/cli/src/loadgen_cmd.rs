//! `occache-loadgen` — a closed-loop benchmark and chaos-probe client
//! for `occache-serve`.
//!
//! Drives the service two ways over one keep-alive connection and
//! reports the ratio:
//!
//! 1. **singles** — every `(block, sub-block)` pair of the Table 1 grid
//!    at one net size, one `POST /v1/simulate` per point;
//! 2. **batch** — the same-shaped grid at a different associativity
//!    (distinct design points, so the cache cannot help) as one
//!    `POST /v1/sweep`, which the scheduler coalesces into one-pass
//!    multisim slices.
//!
//! It then re-requests the first point and checks the reply comes from
//! the cache with bit-identical metrics, scrapes `/metrics`, and writes
//! a `BENCH_serve.json` summary.
//!
//! Every request goes through a resilience layer built for the server's
//! chaos harness (`OCCACHE_SERVE_FAULT`): transport failures (torn
//! writes, dropped connections, stalled reads) reconnect and retry with
//! capped exponential backoff plus deterministic jitter; structured
//! error bodies are parsed and retried only when the server marks them
//! `retryable`; `--hedge MS` races a duplicate request on a second
//! connection when the first is slow (safe — point evaluation is
//! idempotent and content-addressed). A terminal error that is not an
//! attributed [`ErrorBody`] fails the run: under chaos, every request
//! must end in a correct result or a structured, attributed error —
//! never a hang, never silent corruption. `--digest PATH` writes the
//! bit patterns of every point metric so two runs (e.g. faulted vs
//! clean, or pre- vs post-crash) can be compared for bit-identity.

use std::fmt::Write as _;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use occache_serve::json::{ErrorBody, Json};

use crate::client::{HttpClient, Response};
use crate::CliError;

/// Usage text for `--help` and usage errors.
pub const USAGE: &str = "\
occache-loadgen — closed-loop benchmark client for occache-serve

USAGE:
  occache-loadgen --addr HOST:PORT [flags]          closed-loop, one server
  occache-loadgen --peers A,B,C [cluster flags]     open-loop, cluster
  occache-loadgen --free-ports N                    print N free ports

FLAGS:
  --addr HOST:PORT   server address (required)
  --model NAME       workload model set (default pdp11)
  --refs N           references per trace (default 20000)
  --net BYTES        net cache size for the grid (default 256)
  --out PATH         benchmark summary path (default BENCH_serve.json)
  --retries N        retries per request after the first attempt
                     (default 10; transport errors and retryable
                     structured errors only, capped exponential backoff)
  --timeout SECS     per-response timeout (default 600)
  --hedge MS         race a duplicate request on a fresh connection when
                     the first has not answered within MS (default 0=off)
  --digest PATH      write sorted per-point metric bit patterns for
                     cross-run bit-identity comparison
  --check            fail unless the repeated point is served from cache
                     with bit-identical metrics and /metrics scrapes clean
  --help             this text

CLUSTER FLAGS (with --peers):
  --peers A,B,C      shard addresses; requests are routed client-side
                     with the same rendezvous hash occache-route uses,
                     failing over to survivors when the owner is down
  --rate RPS         open-loop arrival rate (default 50)
  --duration SECS    how long to generate arrivals (default 10)
  --keyspace N       distinct design points cycled (default 64)
  --slo-p99-ms MS    fail the run unless p99 latency (measured from the
                     scheduled arrival, queueing included) meets MS
  --merge            splice the cluster entry into an existing --out
                     file instead of overwriting it
";

/// Backoff starts here and doubles per attempt.
const BACKOFF_FLOOR: Duration = Duration::from_millis(50);
/// Backoff (and any honoured `Retry-After`) never exceeds this.
const BACKOFF_CAP: Duration = Duration::from_millis(2_000);

/// Per-run retry/hedging policy, from the command line.
#[derive(Debug, Clone, Copy)]
struct RetryPolicy {
    retries: u32,
    timeout: Duration,
    hedge: Option<Duration>,
}

/// What the resilience layer had to do to complete the run.
#[derive(Debug, Default)]
struct Resilience {
    retries: u64,
    reconnects: u64,
    hedges: u64,
    /// Whether the keep-alive connection has been established at least
    /// once — the first connect of a run is not a *re*connect.
    connected: bool,
}

/// Runs the load generator; returns the human-readable report.
///
/// # Errors
///
/// [`CliError::Usage`] for bad flags, [`CliError::Io`] for transport
/// failures, [`CliError::Integrity`] when `--check` assertions fail or
/// a request ends in an unattributed error.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let parsed = crate::args::parse(
        argv,
        &[
            "addr",
            "model",
            "refs",
            "net",
            "out",
            "retries",
            "timeout",
            "hedge",
            "digest",
            "peers",
            "rate",
            "duration",
            "keyspace",
            "slo-p99-ms",
            "free-ports",
        ],
        &["check", "help", "merge"],
    )?;
    if parsed.switch("help") {
        return Ok(USAGE.to_string());
    }
    if let Some(n) = parsed.value_opt::<usize>("free-ports")? {
        return crate::cluster_cmd::free_ports(n);
    }
    if parsed.value("peers").is_some() {
        return crate::cluster_cmd::run(&parsed);
    }
    let addr = parsed
        .value("addr")
        .ok_or_else(|| CliError::Usage("--addr HOST:PORT is required".into()))?
        .to_string();
    let model = parsed.value("model").unwrap_or("pdp11").to_string();
    let refs: usize = parsed.value_or("refs", 20_000)?;
    let net: u64 = parsed.value_or("net", 256)?;
    let out = parsed
        .value("out")
        .unwrap_or("BENCH_serve.json")
        .to_string();
    let retries: u32 = parsed.value_or("retries", 10)?;
    let timeout_secs: u64 = parsed.value_or("timeout", 600)?;
    let hedge_ms: u64 = parsed.value_or("hedge", 0)?;
    let digest_path = parsed.value("digest").map(str::to_string);
    let check = parsed.switch("check");
    let policy = RetryPolicy {
        retries,
        timeout: Duration::from_secs(timeout_secs.max(1)),
        hedge: (hedge_ms > 0).then(|| Duration::from_millis(hedge_ms)),
    };

    let word = occache_workloads::WorkloadSpec::set_by_name(&model)
        .and_then(|specs| specs.first().map(|s| s.arch().word_size()))
        .ok_or_else(|| CliError::Usage(format!("unknown model {model:?}")))?;
    let pairs = occache_experiments::sweep::table1_pairs(net, word);
    if pairs.is_empty() {
        return Err(CliError::Usage(format!(
            "net size {net} leaves no Table 1 grid points"
        )));
    }

    let mut stats = Resilience::default();
    let mut client: Option<HttpClient> = None;
    let mut digest: Vec<String> = Vec::new();

    let status = resilient_request(
        &addr,
        &mut client,
        "GET",
        "/v1/status",
        None,
        policy,
        &mut stats,
    )?;
    if status.status != 200 {
        return Err(CliError::Integrity(format!(
            "server at {addr} answered /v1/status with {}",
            status.status
        )));
    }

    // Phase 1: one point per request.
    let mut latencies: Vec<Duration> = Vec::with_capacity(pairs.len());
    let mut first_single: Option<(String, String)> = None; // (request body, response body)
    let singles_started = Instant::now();
    for &(block, sub) in &pairs {
        let body = format!(
            "{{\"model\":\"{model}\",\"refs\":{refs},\
             \"config\":{{\"net\":{net},\"block\":{block},\"sub\":{sub},\"assoc\":4,\"word\":{word}}}}}"
        );
        let started = Instant::now();
        let response = resilient_request(
            &addr,
            &mut client,
            "POST",
            "/v1/simulate",
            Some(&body),
            policy,
            &mut stats,
        )?;
        latencies.push(started.elapsed());
        expect_ok("/v1/simulate", &response)?;
        digest_point(&parse_json("/v1/simulate", &response.body)?, &mut digest);
        if first_single.is_none() {
            first_single = Some((body, response.body));
        }
    }
    let singles_wall = singles_started.elapsed();

    // Phase 2: the same grid shape at associativity 2 — distinct design
    // points, all in one request the scheduler can coalesce.
    let sweep_body = format!(
        "{{\"model\":\"{model}\",\"refs\":{refs},\
         \"grid\":{{\"nets\":[{net}],\"assoc\":2,\"word\":{word}}}}}"
    );
    let batch_started = Instant::now();
    let sweep = resilient_request(
        &addr,
        &mut client,
        "POST",
        "/v1/sweep",
        Some(&sweep_body),
        policy,
        &mut stats,
    )?;
    let batch_wall = batch_started.elapsed();
    expect_ok("/v1/sweep", &sweep)?;
    let sweep_doc = parse_json("/v1/sweep", &sweep.body)?;
    let batch_points = sweep_doc
        .get("total")
        .and_then(Json::as_usize)
        .unwrap_or(pairs.len());
    if let Some(points) = sweep_doc.get("points").and_then(Json::as_array) {
        for point in points {
            digest_point(point, &mut digest);
        }
    }

    // Phase 3: the repeated point must come back from the cache with
    // bit-identical metrics.
    let (prime_request, prime_body) =
        first_single.ok_or_else(|| CliError::Integrity("no singles were run".into()))?;
    let again = resilient_request(
        &addr,
        &mut client,
        "POST",
        "/v1/simulate",
        Some(&prime_request),
        policy,
        &mut stats,
    )?;
    expect_ok("repeated /v1/simulate", &again)?;
    let (cache_hit, bit_identical) = compare_points(&prime_body, &again.body)?;
    digest_point(
        &parse_json("repeated /v1/simulate", &again.body)?,
        &mut digest,
    );

    // Scrape.
    let metrics = resilient_request(
        &addr,
        &mut client,
        "GET",
        "/metrics",
        None,
        policy,
        &mut stats,
    )?;
    let scrape_clean = metrics.status == 200
        && metrics.body.contains("occache_requests_total")
        && metrics
            .body
            .contains("occache_request_seconds{quantile=\"0.99\"}");
    let status_doc = parse_json(
        "/v1/status",
        &resilient_request(
            &addr,
            &mut client,
            "GET",
            "/v1/status",
            None,
            policy,
            &mut stats,
        )?
        .body,
    )?;
    let hits = status_doc
        .get("cache_hits")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let misses = status_doc
        .get("cache_misses")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };

    if check {
        let mut problems = Vec::new();
        if !cache_hit {
            problems.push("repeated point was not served from the cache");
        }
        if !bit_identical {
            problems.push("cached reply differed from the computed one");
        }
        if !scrape_clean {
            problems.push("/metrics scrape was missing expected families");
        }
        if !problems.is_empty() {
            return Err(CliError::Integrity(problems.join("; ")));
        }
    }

    if let Some(path) = &digest_path {
        digest.sort_unstable();
        digest.dedup();
        std::fs::write(path, digest.join("\n") + "\n")?;
    }

    latencies.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1].as_secs_f64()
    };
    let singles_secs = singles_wall.as_secs_f64();
    let batch_secs = batch_wall.as_secs_f64();
    let speedup = if batch_secs > 0.0 {
        singles_secs / batch_secs
    } else {
        f64::INFINITY
    };

    let bench = format!(
        "{{\n\
         \"addr\": \"{}\",\n\
         \"model\": \"{}\",\n\
         \"refs\": {refs},\n\
         \"net\": {net},\n\
         \"singles\": {{\"requests\": {}, \"wall_seconds\": {:?}, \"throughput_rps\": {:?}, \
         \"p50_seconds\": {:?}, \"p99_seconds\": {:?}}},\n\
         \"batch\": {{\"points\": {batch_points}, \"wall_seconds\": {:?}, \"throughput_pps\": {:?}}},\n\
         \"speedup\": {:?},\n\
         \"cache_check\": {{\"hit\": {cache_hit}, \"bit_identical\": {bit_identical}}},\n\
         \"metrics_scrape_clean\": {scrape_clean},\n\
         \"resilience\": {{\"retries\": {}, \"reconnects\": {}, \"hedges\": {}}},\n\
         \"server_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {:?}}}\n\
         }}\n",
        occache_serve::json::escape(&addr),
        occache_serve::json::escape(&model),
        pairs.len(),
        singles_secs,
        pairs.len() as f64 / singles_secs.max(1e-9),
        quantile(0.5),
        quantile(0.99),
        batch_secs,
        batch_points as f64 / batch_secs.max(1e-9),
        speedup,
        stats.retries,
        stats.reconnects,
        stats.hedges,
        hit_rate,
    );
    std::fs::write(&out, &bench)?;

    let mut report = String::new();
    let _ = writeln!(
        report,
        "singles: {} requests in {singles_secs:.3}s ({:.1} req/s, p50 {:.3}s, p99 {:.3}s)",
        pairs.len(),
        pairs.len() as f64 / singles_secs.max(1e-9),
        quantile(0.5),
        quantile(0.99),
    );
    let _ = writeln!(
        report,
        "batch:   {batch_points} points in {batch_secs:.3}s ({:.1} pts/s)",
        batch_points as f64 / batch_secs.max(1e-9),
    );
    let _ = writeln!(
        report,
        "speedup: {speedup:.2}x (batched sweep vs one-point-per-request)"
    );
    let _ = writeln!(
        report,
        "cache:   repeat hit={cache_hit} bit_identical={bit_identical} server hit rate {:.1}%",
        hit_rate * 100.0,
    );
    let _ = writeln!(
        report,
        "chaos:   {} retries, {} reconnects, {} hedged requests",
        stats.retries, stats.reconnects, stats.hedges,
    );
    if let Some(path) = &digest_path {
        let _ = writeln!(report, "digest:  {} point(s) -> {path}", digest.len());
    }
    let _ = writeln!(report, "wrote {out}");
    Ok(report)
}

/// What to do with one attempt's outcome.
#[derive(Debug)]
enum Disposition {
    /// 200, or a structured error the server marked non-retryable —
    /// hand the response to the caller as the final answer.
    Done,
    /// Retryable: back off at least this long (the server's
    /// `Retry-After`, capped) and try again.
    Retry(Duration),
    /// A non-200 whose body is not an attributed [`ErrorBody`] — under
    /// the chaos contract this fails the run outright.
    Unattributed(String),
}

/// Classifies a complete response under the chaos contract.
fn classify(response: &Response) -> Disposition {
    if response.status == 200 {
        return Disposition::Done;
    }
    let floor = Duration::from_secs(response.retry_after.unwrap_or(0)).min(BACKOFF_CAP);
    match ErrorBody::parse(&response.body) {
        Ok(body) if body.retryable => Disposition::Retry(floor),
        Ok(_) => Disposition::Done,
        Err(why) => Disposition::Unattributed(format!(
            "status {} with unattributed error body {:?} ({why})",
            response.status, response.body
        )),
    }
}

/// One request, retried to completion: transport errors reconnect,
/// retryable structured errors back off, anything else is final. The
/// keep-alive connection lives in `client` and is dropped on any
/// transport fault so the next attempt reconnects.
#[allow(clippy::too_many_arguments)]
fn resilient_request(
    addr: &str,
    client: &mut Option<HttpClient>,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: RetryPolicy,
    stats: &mut Resilience,
) -> Result<Response, CliError> {
    let seed = fnv1a(path.as_bytes()) ^ fnv1a(body.unwrap_or("").as_bytes());
    let mut last_error = String::new();
    for attempt in 0..=policy.retries {
        if attempt > 0 {
            stats.retries += 1;
        }
        let outcome = if let Some(hedge) = policy.hedge.filter(|_| method == "POST") {
            hedged_post(addr, path, body.unwrap_or(""), policy.timeout, hedge, stats)
        } else {
            attempt_once(addr, client, method, path, body, policy.timeout, stats)
        };
        match outcome {
            Ok(response) => match classify(&response) {
                Disposition::Done => return Ok(response),
                Disposition::Retry(floor) => {
                    last_error = format!("status {}: {}", response.status, response.body);
                    std::thread::sleep(backoff_delay(attempt, seed).max(floor));
                }
                Disposition::Unattributed(why) => {
                    return Err(CliError::Integrity(format!("{method} {path}: {why}")));
                }
            },
            Err(e) => {
                // Transport fault (torn write, dropped or stalled
                // connection): the keep-alive stream is unusable.
                *client = None;
                last_error = e.to_string();
                std::thread::sleep(backoff_delay(attempt, seed));
            }
        }
    }
    Err(CliError::Integrity(format!(
        "{method} {path} failed after {} attempts; last error: {last_error}",
        u64::from(policy.retries) + 1,
    )))
}

/// One attempt over the shared keep-alive connection, reconnecting
/// first if a previous fault closed it.
fn attempt_once(
    addr: &str,
    client: &mut Option<HttpClient>,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
    stats: &mut Resilience,
) -> Result<Response, CliError> {
    if client.is_none() {
        *client = Some(HttpClient::connect_with_timeout(addr, timeout)?);
        if stats.connected {
            stats.reconnects += 1;
        }
        stats.connected = true;
    }
    match client.as_mut() {
        Some(c) => c.request(method, path, body),
        None => Err(CliError::Integrity("connection vanished".into())),
    }
}

/// Fires a request on a fresh connection; if nothing answers within
/// `hedge`, fires an identical duplicate on a second connection and
/// takes whichever finishes first. Safe because point evaluation is
/// idempotent and content-addressed — a duplicate compute lands in the
/// same cache slot.
fn hedged_post(
    addr: &str,
    path: &str,
    body: &str,
    timeout: Duration,
    hedge: Duration,
    stats: &mut Resilience,
) -> Result<Response, CliError> {
    let (tx, rx) = mpsc::channel();
    spawn_leg(addr, path, body, timeout, tx.clone());
    match rx.recv_timeout(hedge) {
        Ok(first) => first,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            stats.hedges += 1;
            spawn_leg(addr, path, body, timeout, tx);
            // Two legs in flight; take the first to land. The loser's
            // send into the dropped receiver is harmless.
            match rx.recv_timeout(timeout + hedge) {
                Ok(result) => result,
                Err(_) => Err(CliError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "both hedged requests timed out",
                ))),
            }
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(CliError::Io(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "hedged request thread died",
        ))),
    }
}

fn spawn_leg(
    addr: &str,
    path: &str,
    body: &str,
    timeout: Duration,
    tx: mpsc::Sender<Result<Response, CliError>>,
) {
    let (addr, path, body) = (addr.to_string(), path.to_string(), body.to_string());
    std::thread::spawn(move || {
        let result =
            HttpClient::connect_with_timeout(&addr, timeout).and_then(|mut c| c.post(&path, &body));
        let _ = tx.send(result);
    });
}

/// Capped exponential backoff with deterministic jitter: the base
/// doubles from 50 ms per attempt up to 2 s; the jitter (up to 25% of
/// the base) is a pure function of the request and attempt so chaos
/// runs replay identically.
fn backoff_delay(attempt: u32, seed: u64) -> Duration {
    let base = BACKOFF_FLOOR
        .saturating_mul(1u32 << attempt.min(10))
        .min(BACKOFF_CAP);
    let jitter_range = (base.as_millis() as u64 / 4).max(1);
    let jitter = fnv1a(&(seed ^ u64::from(attempt)).to_le_bytes()) % jitter_range;
    base + Duration::from_millis(jitter)
}

/// FNV-1a over bytes — the same hash family the journal and result
/// cache key on, reimplemented locally to keep the CLI's dependency
/// surface unchanged.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends one digest line for a point response object: the key plus
/// the raw bit patterns of all four metrics, so equality means
/// bit-identity, not approximate equality.
fn digest_point(doc: &Json, lines: &mut Vec<String>) {
    let bits = |field: &str| doc.get(field).and_then(Json::as_f64).map(f64::to_bits);
    if let (Some(key), Some(miss), Some(traffic), Some(nibble), Some(redundant)) = (
        doc.get("key").and_then(Json::as_str),
        bits("miss_ratio"),
        bits("traffic_ratio"),
        bits("nibble_traffic_ratio"),
        bits("redundant_load_fraction"),
    ) {
        lines.push(format!(
            "{key} {miss:016x} {traffic:016x} {nibble:016x} {redundant:016x}"
        ));
    }
}

fn expect_ok(what: &str, response: &Response) -> Result<(), CliError> {
    if response.status == 200 {
        Ok(())
    } else {
        Err(CliError::Integrity(format!(
            "{what} answered {}: {}",
            response.status, response.body
        )))
    }
}

fn parse_json(what: &str, body: &str) -> Result<Json, CliError> {
    Json::parse(body)
        .map_err(|e| CliError::Integrity(format!("{what} returned unparseable JSON: {e}")))
}

/// Compares a computed and a repeated point response: returns
/// `(second was cached, metrics bit-identical)`.
fn compare_points(first: &str, second: &str) -> Result<(bool, bool), CliError> {
    let a = parse_json("first simulate", first)?;
    let b = parse_json("repeated simulate", second)?;
    let cached = b.get("cached").and_then(Json::as_bool) == Some(true);
    let bits = |doc: &Json, field: &str| -> Option<u64> {
        doc.get(field).and_then(Json::as_f64).map(f64::to_bits)
    };
    let mut identical = a.get("gross_size").and_then(Json::as_u64)
        == b.get("gross_size").and_then(Json::as_u64)
        && a.get("key").and_then(Json::as_str) == b.get("key").and_then(Json::as_str);
    for field in [
        "miss_ratio",
        "traffic_ratio",
        "nibble_traffic_ratio",
        "redundant_load_fraction",
    ] {
        identical &= bits(&a, field).is_some() && bits(&a, field) == bits(&b, field);
    }
    Ok((cached, identical))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_is_reported_for_missing_addr() {
        let err = run(&[]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["--help".to_string()]).unwrap();
        assert!(out.contains("occache-loadgen"));
        assert!(out.contains("--hedge"));
        assert!(out.contains("--digest"));
    }

    #[test]
    fn compare_points_detects_divergence() {
        let a = r#"{"key":"ab","cached":false,"gross_size":10,"miss_ratio":0.5,"traffic_ratio":1.0,"nibble_traffic_ratio":1.0,"redundant_load_fraction":0.0}"#;
        let b = a.replace("\"cached\":false", "\"cached\":true");
        let (cached, identical) = compare_points(a, &b).unwrap();
        assert!(cached && identical);
        let c = b.replace("0.5", "0.25");
        let (_, identical) = compare_points(a, &c).unwrap();
        assert!(!identical);
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        for attempt in 0..16 {
            let a = backoff_delay(attempt, 42);
            let b = backoff_delay(attempt, 42);
            assert_eq!(a, b, "same attempt and seed must back off identically");
            assert!(a >= BACKOFF_FLOOR);
            assert!(a <= BACKOFF_CAP + BACKOFF_CAP / 4);
        }
        // Base doubles per attempt, so attempt 1 (>=100ms) always
        // outlasts attempt 0 (<=50ms + 25% jitter).
        assert!(backoff_delay(1, 42) > backoff_delay(0, 42));
    }

    #[test]
    fn classify_follows_the_chaos_contract() {
        let ok = Response {
            status: 200,
            body: "{}".into(),
            retry_after: None,
        };
        assert!(matches!(classify(&ok), Disposition::Done));

        let retryable = Response {
            status: 429,
            body: ErrorBody::new("queue-full", "queue full", true).render(),
            retry_after: Some(3),
        };
        match classify(&retryable) {
            Disposition::Retry(floor) => assert_eq!(floor, Duration::from_secs(2)),
            other => panic!("expected retry, got {other:?}"),
        }

        let terminal = Response {
            status: 503,
            body: ErrorBody::new("quarantined", "circuit open", false)
                .with_key(7)
                .render(),
            retry_after: None,
        };
        assert!(matches!(classify(&terminal), Disposition::Done));

        let garbage = Response {
            status: 500,
            body: "Internal Server Error".into(),
            retry_after: None,
        };
        assert!(matches!(classify(&garbage), Disposition::Unattributed(_)));
    }

    #[test]
    fn digest_lines_capture_bit_patterns() {
        let doc = Json::parse(
            r#"{"key":"00ab","miss_ratio":0.5,"traffic_ratio":1.0,"nibble_traffic_ratio":1.0,"redundant_load_fraction":0.0}"#,
        )
        .unwrap();
        let mut lines = Vec::new();
        digest_point(&doc, &mut lines);
        assert_eq!(
            lines,
            vec![format!(
                "00ab {:016x} {:016x} {:016x} {:016x}",
                0.5f64.to_bits(),
                1.0f64.to_bits(),
                1.0f64.to_bits(),
                0.0f64.to_bits()
            )]
        );
        // A failure object (no metrics) contributes nothing.
        let failure = Json::parse(r#"{"config":"x","fault":"panic","message":"boom"}"#).unwrap();
        digest_point(&failure, &mut lines);
        assert_eq!(lines.len(), 1);
    }
}
