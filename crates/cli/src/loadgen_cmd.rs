//! `occache-loadgen` — a closed-loop benchmark client for `occache-serve`.
//!
//! Drives the service two ways over one keep-alive connection and
//! reports the ratio:
//!
//! 1. **singles** — every `(block, sub-block)` pair of the Table 1 grid
//!    at one net size, one `POST /v1/simulate` per point;
//! 2. **batch** — the same-shaped grid at a different associativity
//!    (distinct design points, so the cache cannot help) as one
//!    `POST /v1/sweep`, which the scheduler coalesces into one-pass
//!    multisim slices.
//!
//! It then re-requests the first point and checks the reply comes from
//! the cache with bit-identical metrics, scrapes `/metrics`, and writes
//! a `BENCH_serve.json` summary.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use occache_serve::json::Json;

use crate::client::{HttpClient, Response};
use crate::CliError;

/// Usage text for `--help` and usage errors.
pub const USAGE: &str = "\
occache-loadgen — closed-loop benchmark client for occache-serve

USAGE:
  occache-loadgen --addr HOST:PORT [flags]

FLAGS:
  --addr HOST:PORT   server address (required)
  --model NAME       workload model set (default pdp11)
  --refs N           references per trace (default 20000)
  --net BYTES        net cache size for the grid (default 256)
  --out PATH         benchmark summary path (default BENCH_serve.json)
  --check            fail unless the repeated point is served from cache
                     with bit-identical metrics and /metrics scrapes clean
  --help             this text
";

const RETRY_ATTEMPTS: usize = 40;
const RETRY_PAUSE: Duration = Duration::from_millis(250);

/// Runs the load generator; returns the human-readable report.
///
/// # Errors
///
/// [`CliError::Usage`] for bad flags, [`CliError::Io`] for transport
/// failures, [`CliError::Integrity`] when `--check` assertions fail.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let parsed = crate::args::parse(
        argv,
        &["addr", "model", "refs", "net", "out"],
        &["check", "help"],
    )?;
    if parsed.switch("help") {
        return Ok(USAGE.to_string());
    }
    let addr = parsed
        .value("addr")
        .ok_or_else(|| CliError::Usage("--addr HOST:PORT is required".into()))?
        .to_string();
    let model = parsed.value("model").unwrap_or("pdp11").to_string();
    let refs: usize = parsed.value_or("refs", 20_000)?;
    let net: u64 = parsed.value_or("net", 256)?;
    let out = parsed
        .value("out")
        .unwrap_or("BENCH_serve.json")
        .to_string();
    let check = parsed.switch("check");

    let word = occache_workloads::WorkloadSpec::set_by_name(&model)
        .and_then(|specs| specs.first().map(|s| s.arch().word_size()))
        .ok_or_else(|| CliError::Usage(format!("unknown model {model:?}")))?;
    let pairs = occache_experiments::sweep::table1_pairs(net, word);
    if pairs.is_empty() {
        return Err(CliError::Usage(format!(
            "net size {net} leaves no Table 1 grid points"
        )));
    }

    let mut client = HttpClient::connect(&addr)?;
    let status = client.get("/v1/status")?;
    if status.status != 200 {
        return Err(CliError::Integrity(format!(
            "server at {addr} answered /v1/status with {}",
            status.status
        )));
    }

    // Phase 1: one point per request.
    let mut latencies: Vec<Duration> = Vec::with_capacity(pairs.len());
    let mut first_single: Option<(String, String)> = None; // (request body, response body)
    let singles_started = Instant::now();
    for &(block, sub) in &pairs {
        let body = format!(
            "{{\"model\":\"{model}\",\"refs\":{refs},\
             \"config\":{{\"net\":{net},\"block\":{block},\"sub\":{sub},\"assoc\":4,\"word\":{word}}}}}"
        );
        let started = Instant::now();
        let response = post_with_retry(&mut client, "/v1/simulate", &body)?;
        latencies.push(started.elapsed());
        expect_ok("/v1/simulate", &response)?;
        if first_single.is_none() {
            first_single = Some((body, response.body));
        }
    }
    let singles_wall = singles_started.elapsed();

    // Phase 2: the same grid shape at associativity 2 — distinct design
    // points, all in one request the scheduler can coalesce.
    let sweep_body = format!(
        "{{\"model\":\"{model}\",\"refs\":{refs},\
         \"grid\":{{\"nets\":[{net}],\"assoc\":2,\"word\":{word}}}}}"
    );
    let batch_started = Instant::now();
    let sweep = post_with_retry(&mut client, "/v1/sweep", &sweep_body)?;
    let batch_wall = batch_started.elapsed();
    expect_ok("/v1/sweep", &sweep)?;
    let sweep_doc = parse_json("/v1/sweep", &sweep.body)?;
    let batch_points = sweep_doc
        .get("total")
        .and_then(Json::as_usize)
        .unwrap_or(pairs.len());

    // Phase 3: the repeated point must come back from the cache with
    // bit-identical metrics.
    let (prime_request, prime_body) =
        first_single.ok_or_else(|| CliError::Integrity("no singles were run".into()))?;
    let again = post_with_retry(&mut client, "/v1/simulate", &prime_request)?;
    expect_ok("repeated /v1/simulate", &again)?;
    let (cache_hit, bit_identical) = compare_points(&prime_body, &again.body)?;

    // Scrape.
    let metrics = client.get("/metrics")?;
    let scrape_clean = metrics.status == 200
        && metrics.body.contains("occache_requests_total")
        && metrics
            .body
            .contains("occache_request_seconds{quantile=\"0.99\"}");
    let status_doc = parse_json("/v1/status", &client.get("/v1/status")?.body)?;
    let hits = status_doc
        .get("cache_hits")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let misses = status_doc
        .get("cache_misses")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };

    if check {
        let mut problems = Vec::new();
        if !cache_hit {
            problems.push("repeated point was not served from the cache");
        }
        if !bit_identical {
            problems.push("cached reply differed from the computed one");
        }
        if !scrape_clean {
            problems.push("/metrics scrape was missing expected families");
        }
        if !problems.is_empty() {
            return Err(CliError::Integrity(problems.join("; ")));
        }
    }

    latencies.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1].as_secs_f64()
    };
    let singles_secs = singles_wall.as_secs_f64();
    let batch_secs = batch_wall.as_secs_f64();
    let speedup = if batch_secs > 0.0 {
        singles_secs / batch_secs
    } else {
        f64::INFINITY
    };

    let bench = format!(
        "{{\n\
         \"addr\": \"{}\",\n\
         \"model\": \"{}\",\n\
         \"refs\": {refs},\n\
         \"net\": {net},\n\
         \"singles\": {{\"requests\": {}, \"wall_seconds\": {:?}, \"throughput_rps\": {:?}, \
         \"p50_seconds\": {:?}, \"p99_seconds\": {:?}}},\n\
         \"batch\": {{\"points\": {batch_points}, \"wall_seconds\": {:?}, \"throughput_pps\": {:?}}},\n\
         \"speedup\": {:?},\n\
         \"cache_check\": {{\"hit\": {cache_hit}, \"bit_identical\": {bit_identical}}},\n\
         \"metrics_scrape_clean\": {scrape_clean},\n\
         \"server_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \"hit_rate\": {:?}}}\n\
         }}\n",
        occache_serve::json::escape(&addr),
        occache_serve::json::escape(&model),
        pairs.len(),
        singles_secs,
        pairs.len() as f64 / singles_secs.max(1e-9),
        quantile(0.5),
        quantile(0.99),
        batch_secs,
        batch_points as f64 / batch_secs.max(1e-9),
        speedup,
        hit_rate,
    );
    std::fs::write(&out, &bench)?;

    let mut report = String::new();
    let _ = writeln!(
        report,
        "singles: {} requests in {singles_secs:.3}s ({:.1} req/s, p50 {:.3}s, p99 {:.3}s)",
        pairs.len(),
        pairs.len() as f64 / singles_secs.max(1e-9),
        quantile(0.5),
        quantile(0.99),
    );
    let _ = writeln!(
        report,
        "batch:   {batch_points} points in {batch_secs:.3}s ({:.1} pts/s)",
        batch_points as f64 / batch_secs.max(1e-9),
    );
    let _ = writeln!(
        report,
        "speedup: {speedup:.2}x (batched sweep vs one-point-per-request)"
    );
    let _ = writeln!(
        report,
        "cache:   repeat hit={cache_hit} bit_identical={bit_identical} server hit rate {:.1}%",
        hit_rate * 100.0,
    );
    let _ = writeln!(report, "wrote {out}");
    Ok(report)
}

/// POSTs, honouring 429 backpressure with bounded retries.
fn post_with_retry(client: &mut HttpClient, path: &str, body: &str) -> Result<Response, CliError> {
    for _ in 0..RETRY_ATTEMPTS {
        let response = client.post(path, body)?;
        if response.status != 429 {
            return Ok(response);
        }
        std::thread::sleep(RETRY_PAUSE);
    }
    Err(CliError::Integrity(format!(
        "{path} still answering 429 after {RETRY_ATTEMPTS} retries"
    )))
}

fn expect_ok(what: &str, response: &Response) -> Result<(), CliError> {
    if response.status == 200 {
        Ok(())
    } else {
        Err(CliError::Integrity(format!(
            "{what} answered {}: {}",
            response.status, response.body
        )))
    }
}

fn parse_json(what: &str, body: &str) -> Result<Json, CliError> {
    Json::parse(body)
        .map_err(|e| CliError::Integrity(format!("{what} returned unparseable JSON: {e}")))
}

/// Compares a computed and a repeated point response: returns
/// `(second was cached, metrics bit-identical)`.
fn compare_points(first: &str, second: &str) -> Result<(bool, bool), CliError> {
    let a = parse_json("first simulate", first)?;
    let b = parse_json("repeated simulate", second)?;
    let cached = b.get("cached").and_then(Json::as_bool) == Some(true);
    let bits = |doc: &Json, field: &str| -> Option<u64> {
        doc.get(field).and_then(Json::as_f64).map(f64::to_bits)
    };
    let mut identical = a.get("gross_size").and_then(Json::as_u64)
        == b.get("gross_size").and_then(Json::as_u64)
        && a.get("key").and_then(Json::as_str) == b.get("key").and_then(Json::as_str);
    for field in [
        "miss_ratio",
        "traffic_ratio",
        "nibble_traffic_ratio",
        "redundant_load_fraction",
    ] {
        identical &= bits(&a, field).is_some() && bits(&a, field) == bits(&b, field);
    }
    Ok((cached, identical))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_is_reported_for_missing_addr() {
        let err = run(&[]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["--help".to_string()]).unwrap();
        assert!(out.contains("occache-loadgen"));
    }

    #[test]
    fn compare_points_detects_divergence() {
        let a = r#"{"key":"ab","cached":false,"gross_size":10,"miss_ratio":0.5,"traffic_ratio":1.0,"nibble_traffic_ratio":1.0,"redundant_load_fraction":0.0}"#;
        let b = a.replace("\"cached\":false", "\"cached\":true");
        let (cached, identical) = compare_points(a, &b).unwrap();
        assert!(cached && identical);
        let c = b.replace("0.5", "0.25");
        let (_, identical) = compare_points(a, &c).unwrap();
        assert!(!identical);
    }
}
