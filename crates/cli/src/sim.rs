//! `occache-sim`: simulate one cache configuration against a trace.

use std::fmt::Write as _;
use std::fs::File;
use std::io::Read;

use occache_core::{BusModel, CacheConfig, FetchPolicy, ReplacementPolicy, SubBlockCache};
use occache_trace::io::parse_trace_auto;
use occache_trace::MemRef;
use occache_workloads::WorkloadSpec;

use crate::args::{parse, Parsed};
use crate::CliError;

/// Usage text for `occache-sim`.
pub const USAGE: &str = "\
occache-sim — trace-driven sub-block cache simulation

USAGE:
  occache-sim [OPTIONS] [TRACE_FILE]

INPUT (one of):
  TRACE_FILE            trace file, text (`i|r|w <hex>`) or dinero din
                        (`0|1|2 <hex>`) format, auto-detected
                        (`-` reads standard input)
  --workload NAME       synthetic workload from the paper's tables,
                        e.g. ED, grep, spice, FGO1, z8000:C2

CACHE (defaults: a 1024-byte 4-way LRU demand cache, 16-byte blocks):
  --net BYTES           net (data) size              [1024]
  --block BYTES         block size                   [16]
  --sub BYTES           sub-block size               [= block]
  --assoc N             associativity                [4]
  --replacement POLICY  lru | fifo | random          [lru]
  --fetch POLICY        demand | load-forward | load-forward-opt [demand]
  --word BYTES          bus word size                [2]
  --address-bits N      address width for tag cost   [32]

RUN:
  --refs N              max references to simulate   [1000000]
  --warmup N            uncounted warm-up prefix     [0]
  --seed N              synthetic workload seed      [0]
  --nibble              also print the nibble-mode scaled traffic ratio
";

const VALUE_FLAGS: &[&str] = &[
    "workload",
    "net",
    "block",
    "sub",
    "assoc",
    "replacement",
    "fetch",
    "word",
    "address-bits",
    "refs",
    "warmup",
    "seed",
];
const BOOL_FLAGS: &[&str] = &["nibble", "help"];

/// Builds a [`CacheConfig`] from parsed flags (shared with `occache-sweep`).
pub fn config_from(parsed: &Parsed) -> Result<CacheConfig, CliError> {
    let block = parsed.value_or("block", 16u64)?;
    let mut builder = CacheConfig::builder();
    builder
        .net_size(parsed.value_or("net", 1024u64)?)
        .block_size(block)
        .sub_block_size(parsed.value_or("sub", block)?)
        .associativity(parsed.value_or("assoc", 4u64)?)
        .word_size(parsed.value_or("word", 2u64)?)
        .address_bits(parsed.value_or("address-bits", 32u32)?);
    if let Some(policy) = parsed.value("replacement") {
        builder.replacement(match policy.to_ascii_lowercase().as_str() {
            "lru" => ReplacementPolicy::Lru,
            "fifo" => ReplacementPolicy::Fifo,
            "random" => ReplacementPolicy::Random,
            other => {
                return Err(CliError::Usage(format!(
                    "--replacement: expected lru|fifo|random, got {other:?}"
                )))
            }
        });
    }
    if let Some(policy) = parsed.value("fetch") {
        builder.fetch(match policy.to_ascii_lowercase().as_str() {
            "demand" => FetchPolicy::Demand,
            "load-forward" | "lf" => FetchPolicy::LOAD_FORWARD,
            "load-forward-opt" | "lf-opt" => FetchPolicy::LoadForward {
                remember_valid: true,
            },
            other => {
                return Err(CliError::Usage(format!(
                    "--fetch: expected demand|load-forward|load-forward-opt, got {other:?}"
                )))
            }
        });
    }
    Ok(builder.build()?)
}

/// Loads the reference stream named by the command line.
fn load_refs(parsed: &Parsed, limit: usize, seed: u64) -> Result<Vec<MemRef>, CliError> {
    match (parsed.value("workload"), parsed.positional()) {
        (Some(name), []) => {
            let spec = WorkloadSpec::by_name(name).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown workload {name:?}; the names are those of the paper's \
                     Tables 2-5 (ED, GREP, spice, FGO1, ...)"
                ))
            })?;
            Ok(spec.generator(seed).take(limit).collect())
        }
        (None, [path]) if path == "-" => {
            let mut text = String::new();
            std::io::stdin().read_to_string(&mut text)?;
            let mut refs = parse_trace_auto(text.as_bytes())?;
            refs.truncate(limit);
            Ok(refs)
        }
        (None, [path]) => {
            let mut refs = parse_trace_auto(File::open(path)?)?;
            refs.truncate(limit);
            Ok(refs)
        }
        (Some(_), _) => Err(CliError::Usage(
            "give either --workload or a trace file, not both".into(),
        )),
        (None, []) => Err(CliError::Usage(
            "no input: give a trace file or --workload NAME".into(),
        )),
        (None, _) => Err(CliError::Usage("at most one trace file".into())),
    }
}

/// Runs the command and returns the report to print.
///
/// # Errors
///
/// Returns a [`CliError`] for bad usage, invalid configuration, unreadable
/// or malformed traces.
pub fn run<S: AsRef<str>>(argv: &[S]) -> Result<String, CliError> {
    let parsed = parse(argv, VALUE_FLAGS, BOOL_FLAGS)?;
    if parsed.switch("help") {
        return Ok(USAGE.to_string());
    }
    let config = config_from(&parsed)?;
    let limit = parsed.value_or("refs", 1_000_000usize)?;
    let warmup = parsed.value_or("warmup", 0usize)?;
    let seed = parsed.value_or("seed", 0u64)?;
    let refs = load_refs(&parsed, limit, seed)?;
    if warmup >= refs.len() {
        return Err(CliError::Usage(format!(
            "--warmup {warmup} consumes the whole {}-reference trace",
            refs.len()
        )));
    }

    let mut cache = SubBlockCache::new(config);
    for r in &refs[..warmup] {
        cache.access(r.address(), r.kind());
    }
    cache.reset_metrics();
    for r in &refs[warmup..] {
        cache.access(r.address(), r.kind());
    }
    let m = cache.metrics();

    let mut out = String::new();
    let _ = writeln!(out, "configuration : {config}");
    let _ = writeln!(
        out,
        "gross size    : {} bytes ({} data + {} tag/valid)",
        config.gross_size(),
        config.net_size(),
        config.gross_size() - config.net_size()
    );
    let _ = writeln!(
        out,
        "references    : {} counted, {} writes (uncounted), {} warm-up",
        m.accesses(),
        m.write_accesses(),
        warmup
    );
    let _ = writeln!(out, "miss ratio    : {:.4}", m.miss_ratio());
    let _ = writeln!(out, "traffic ratio : {:.4}", m.traffic_ratio());
    if parsed.switch("nibble") {
        let _ = writeln!(
            out,
            "nibble traffic: {:.4}   (bus cost 1 + (w-1)/3)",
            m.scaled_traffic_ratio(BusModel::paper_nibble())
        );
    }
    if m.redundant_sub_loads() > 0 {
        let _ = writeln!(
            out,
            "redundant     : {} of {} sub-block loads ({:.1}%)",
            m.redundant_sub_loads(),
            m.sub_loads(),
            m.redundant_sub_loads() as f64 / m.sub_loads() as f64 * 100.0
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_strs(argv: &[&str]) -> Result<String, CliError> {
        run(argv)
    }

    #[test]
    fn help_prints_usage() {
        let out = run_strs(&["--help"]).unwrap();
        assert!(out.contains("occache-sim"));
    }

    #[test]
    fn simulates_named_workload() {
        let out = run_strs(&["--workload", "ED", "--refs", "20000"]).unwrap();
        assert!(out.contains("miss ratio"), "{out}");
        // Default: sub-block = block (a conventional cache), gross 1256.
        assert!(out.contains("(16,16)"), "{out}");
        assert!(
            out.contains("1256 bytes"),
            "default config gross size: {out}"
        );
        // The paper's 16,8 headline cache costs 1264 bytes.
        let out = run_strs(&["--workload", "ED", "--refs", "20000", "--sub", "8"]).unwrap();
        assert!(out.contains("1264 bytes"), "{out}");
    }

    #[test]
    fn qualified_workload_names_work() {
        let out = run_strs(&["--workload", "z8000:C2", "--refs", "5000"]).unwrap();
        assert!(out.contains("miss ratio"));
    }

    #[test]
    fn rejects_unknown_workload() {
        let e = run_strs(&["--workload", "doom"]).unwrap_err();
        assert!(e.to_string().contains("doom"));
    }

    #[test]
    fn rejects_conflicting_inputs() {
        let e = run_strs(&["--workload", "ED", "t.din"]).unwrap_err();
        assert!(e.to_string().contains("not both"));
    }

    #[test]
    fn rejects_missing_input() {
        let e = run_strs(&[]).unwrap_err();
        assert!(e.to_string().contains("no input"));
    }

    #[test]
    fn rejects_overlong_warmup() {
        let e = run_strs(&["--workload", "ED", "--refs", "100", "--warmup", "100"]).unwrap_err();
        assert!(e.to_string().contains("warmup"));
    }

    #[test]
    fn load_forward_reports_redundant_loads() {
        let out = run_strs(&[
            "--workload",
            "z8000:CPP",
            "--refs",
            "50000",
            "--block",
            "16",
            "--sub",
            "2",
            "--fetch",
            "load-forward",
            "--net",
            "256",
        ])
        .unwrap();
        assert!(out.contains("redundant"), "{out}");
    }

    #[test]
    fn reads_trace_files() {
        let dir = std::env::temp_dir().join("occache_sim_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.din");
        std::fs::write(&path, "i 100\nr 8000\ni 102\n").unwrap();
        let out = run_strs(&[path.to_str().unwrap()]).unwrap();
        assert!(out.contains("3 counted"), "{out}");
    }

    #[test]
    fn config_flags_are_respected() {
        let out = run_strs(&[
            "--workload",
            "ED",
            "--refs",
            "5000",
            "--net",
            "64",
            "--block",
            "8",
            "--sub",
            "4",
            "--replacement",
            "fifo",
            "--nibble",
        ])
        .unwrap();
        assert!(out.contains("FIFO"), "{out}");
        assert!(out.contains("nibble traffic"), "{out}");
    }

    #[test]
    fn invalid_geometry_is_a_config_error() {
        let e = run_strs(&["--workload", "ED", "--net", "100"]).unwrap_err();
        assert!(matches!(e, CliError::Config(_)));
    }
}
