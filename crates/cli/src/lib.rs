#![warn(missing_docs)]

//! # occache-cli — command-line front ends
//!
//! Five binaries in the spirit of the trace-driven-simulation tooling the
//! paper's methodology spawned (dinero and its descendants):
//!
//! * **`occache-sim`** — simulate one cache configuration against a trace
//!   file (text format: `i|r|w <hex-address>` per line) or a named
//!   synthetic workload, printing miss/traffic ratios and cost,
//! * **`occache-gen`** — emit a named synthetic workload as a text trace,
//! * **`occache-sweep`** — run the Table 1 design-space grid for one
//!   architecture and write the CSV,
//! * **`occache-stats`** — locality characterisation (mix, footprint,
//!   sequential runs, Denning working-set curve) of a trace or workload,
//! * **`occache-verify`** — check a results directory end to end:
//!   manifest hashes, checkpoint-journal integrity, and sampled bit-exact
//!   re-simulation (also reachable as `occache-sweep --verify`),
//! * **`occache-loadgen`** — closed-loop benchmark client for
//!   `occache-serve`: singles vs batched sweep throughput, cache-hit
//!   bit-identity check, `BENCH_serve.json` summary.
//!
//! The command logic lives in this library so it is unit-testable; the
//! `src/bin` wrappers only shuttle `std::env::args` in and exit codes out.

pub mod args;
pub mod client;
pub mod cluster_cmd;
mod error;
pub mod gen;
pub mod loadgen_cmd;
pub mod sim;
pub mod stats_cmd;
pub mod sweep_cmd;
pub mod verify_cmd;

pub use error::CliError;
