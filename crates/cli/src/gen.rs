//! `occache-gen`: emit a synthetic workload as a text trace.

use std::fs::File;
use std::io::{BufWriter, Write};

use occache_trace::din::write_din;
use occache_trace::io::write_trace;
use occache_trace::MemRef;
use occache_workloads::WorkloadSpec;

use crate::args::parse;
use crate::CliError;

/// Usage text for `occache-gen`.
pub const USAGE: &str = "\
occache-gen — generate a synthetic workload trace

USAGE:
  occache-gen --workload NAME [--refs N] [--seed N] [--out FILE]

  --workload NAME   a Table 2-5 trace name (ED, GREP, spice, FGO1, ...)
                    optionally architecture-qualified (z8000:C2)
  --refs N          references to emit                  [1000000]
  --seed N          generator seed                      [0]
  --out FILE        output path (default: standard output)
  --format FMT      text (i|r|w <hex>) or din (0|1|2 <hex>)  [text]

Both formats are one record per line and readable by occache-sim; `din`
matches the dinero simulator family's convention.
";

const VALUE_FLAGS: &[&str] = &["workload", "refs", "seed", "out", "format"];
const BOOL_FLAGS: &[&str] = &["help"];

/// Runs the command, writing the trace to `--out` or `stdout`.
///
/// Returns the text to print to stdout (the usage text for `--help`,
/// otherwise an empty string when the trace went to a file, or the trace
/// itself when no `--out` was given).
///
/// # Errors
///
/// Returns a [`CliError`] on bad usage or I/O failure.
pub fn run<S: AsRef<str>>(argv: &[S]) -> Result<String, CliError> {
    let parsed = parse(argv, VALUE_FLAGS, BOOL_FLAGS)?;
    if parsed.switch("help") {
        return Ok(USAGE.to_string());
    }
    if !parsed.positional().is_empty() {
        return Err(CliError::Usage(
            "occache-gen takes no positional arguments".into(),
        ));
    }
    let name = parsed
        .value("workload")
        .ok_or_else(|| CliError::Usage("--workload NAME is required".into()))?;
    let spec = WorkloadSpec::by_name(name)
        .ok_or_else(|| CliError::Usage(format!("unknown workload {name:?}")))?;
    let refs = parsed.value_or("refs", 1_000_000usize)?;
    let seed = parsed.value_or("seed", 0u64)?;
    let din = match parsed.value("format").unwrap_or("text") {
        "text" => false,
        "din" => true,
        other => {
            return Err(CliError::Usage(format!(
                "--format: expected text|din, got {other:?}"
            )))
        }
    };
    let stream = spec.generator(seed).take(refs);
    let emit = |writer: &mut dyn Write, stream: &mut dyn Iterator<Item = MemRef>| {
        if din {
            write_din(writer, stream)
        } else {
            write_trace(writer, stream)
        }
    };

    let mut stream = stream;
    match parsed.value("out") {
        Some(path) => {
            let mut writer = BufWriter::new(File::create(path)?);
            writeln!(
                writer,
                "# occache-gen workload={} seed={seed} refs={refs}",
                spec.name()
            )?;
            emit(&mut writer, &mut stream)?;
            writer.flush()?;
            Ok(String::new())
        }
        None => {
            let mut out = Vec::new();
            emit(&mut out, &mut stream)?;
            // Both trace formats emit pure ASCII, so lossy conversion is
            // exact; using it keeps this path panic-free regardless.
            Ok(String::from_utf8_lossy(&out).into_owned())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use occache_trace::io::parse_trace;

    #[test]
    fn help_prints_usage() {
        assert!(run(&["--help"]).unwrap().contains("occache-gen"));
    }

    #[test]
    fn emits_parseable_trace_to_stdout() {
        let out = run(&["--workload", "GREP", "--refs", "500"]).unwrap();
        let refs = parse_trace(out.as_bytes()).unwrap();
        assert_eq!(refs.len(), 500);
    }

    #[test]
    fn writes_file_with_provenance_header() {
        let dir = std::env::temp_dir().join("occache_gen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grep.din");
        let out = run(&[
            "--workload",
            "GREP",
            "--refs",
            "100",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.is_empty());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# occache-gen workload=GREP"));
        assert_eq!(parse_trace(text.as_bytes()).unwrap().len(), 100);
    }

    #[test]
    fn same_seed_same_trace() {
        let a = run(&["--workload", "ED", "--refs", "200", "--seed", "5"]).unwrap();
        let b = run(&["--workload", "ED", "--refs", "200", "--seed", "5"]).unwrap();
        assert_eq!(a, b);
        let c = run(&["--workload", "ED", "--refs", "200", "--seed", "6"]).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn din_format_is_supported() {
        let out = run(&["--workload", "ED", "--refs", "50", "--format", "din"]).unwrap();
        let refs = occache_trace::din::parse_din(out.as_bytes()).unwrap();
        assert_eq!(refs.len(), 50);
        assert!(out.lines().all(|l| l.starts_with(['0', '1', '2'])), "{out}");
    }

    #[test]
    fn rejects_unknown_format() {
        assert!(run(&["--workload", "ED", "--format", "elf"]).is_err());
    }

    #[test]
    fn requires_workload() {
        assert!(run(&["--refs", "10"])
            .unwrap_err()
            .to_string()
            .contains("required"));
    }
}
