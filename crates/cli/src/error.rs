//! The CLI error type.

use std::error::Error;
use std::fmt;
use std::io;

use occache_core::ConfigError;
use occache_trace::io::ParseTraceError;

/// Anything that can go wrong running a CLI command.
#[derive(Debug)]
pub enum CliError {
    /// Bad command-line usage; the message is shown with the usage text.
    Usage(String),
    /// The cache configuration was invalid.
    Config(ConfigError),
    /// A trace file failed to parse.
    Trace(ParseTraceError),
    /// Filesystem or pipe failure.
    Io(io::Error),
    /// A verification pass found damaged or divergent results; the
    /// message is the full verify report.
    Integrity(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Config(e) => write!(f, "invalid cache configuration: {e}"),
            CliError::Trace(e) => write!(f, "invalid trace: {e}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Integrity(report) => write!(f, "integrity check failed:\n{report}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Usage(_) => None,
            CliError::Config(e) => Some(e),
            CliError::Trace(e) => Some(e),
            CliError::Io(e) => Some(e),
            CliError::Integrity(_) => None,
        }
    }
}

impl From<ConfigError> for CliError {
    fn from(e: ConfigError) -> Self {
        CliError::Config(e)
    }
}

impl From<ParseTraceError> for CliError {
    fn from(e: ParseTraceError) -> Self {
        CliError::Trace(e)
    }
}

impl From<io::Error> for CliError {
    fn from(e: io::Error) -> Self {
        CliError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = CliError::Usage("--net wants a number".into());
        assert!(e.to_string().contains("--net"));
        let e: CliError = occache_core::ConfigError::ZeroAssociativity.into();
        assert!(e.to_string().contains("associativity"));
    }
}
