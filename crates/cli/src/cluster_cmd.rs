//! The open-loop cluster mode of `occache-loadgen` (`--peers`).
//!
//! Where the closed-loop mode drives one server as hard as one
//! connection allows, the cluster mode models *arrivals*: requests are
//! scheduled at a fixed rate regardless of how fast earlier ones
//! complete, so latency includes queueing delay — the number an SLO is
//! actually written against. Each request is routed client-side with
//! the same rendezvous hash the `occache-route` front door and the
//! nodes' peer-fill planner use ([`occache_serve::router::route_key`] /
//! [`ranked`]), so a healthy cluster serves every key from its owning
//! shard's cache; when a shard is down the client fails over to the
//! next survivor in the ranking, exactly as the router does.
//!
//! The chaos contract carries over unchanged: every scheduled request
//! must end in a correct result or a structured, attributed
//! [`ErrorBody`] — an unattributed failure (once every ranked peer has
//! been tried) fails the run. `--slo-p99-ms` turns the measured p99
//! into a hard assertion; `--digest` writes the same sorted bit-pattern
//! lines as the closed-loop mode, so a three-node run can be diffed
//! bit-for-bit against a single-node run of the same keyspace.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use occache_core::CacheConfig;
use occache_serve::json::{ErrorBody, Json};
use occache_serve::router::{ranked, route_key};

use crate::args::Parsed;
use crate::client::HttpClient;
use crate::CliError;

/// Worker threads draining the open-loop arrival queue. More than the
/// shard count so one slow shard cannot stall unrelated arrivals.
const WORKERS: usize = 16;

/// Transport-level attempts per ranked peer before failing over.
const ATTEMPTS_PER_PEER: u32 = 2;

/// One design point of the cycled keyspace.
#[derive(Debug, Clone)]
struct Point {
    body: String,
    route: u64,
}

/// Outcome counters shared across workers.
#[derive(Debug, Default)]
struct Outcomes {
    ok: AtomicU64,
    cached: AtomicU64,
    attributed: AtomicU64,
    failovers: AtomicU64,
}

/// Prints `n` distinct free loopback ports, one per line — a helper for
/// scripts that must pick ephemeral ports *before* exporting them as a
/// shared `OCCACHE_PEERS` list. All listeners stay open until every
/// port is gathered, so the set is duplicate-free.
///
/// # Errors
///
/// Returns [`CliError::Io`] when a listener cannot be bound.
pub fn free_ports(n: usize) -> Result<String, CliError> {
    let mut listeners = Vec::with_capacity(n);
    let mut out = String::new();
    for _ in 0..n {
        let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
        let _ = writeln!(out, "{}", listener.local_addr()?.port());
        listeners.push(listener);
    }
    Ok(out)
}

/// Runs the open-loop cluster benchmark; returns the human-readable
/// report.
///
/// # Errors
///
/// [`CliError::Usage`] for bad flags, [`CliError::Integrity`] when the
/// SLO assertion fails or any request ends unattributed.
pub fn run(parsed: &Parsed) -> Result<String, CliError> {
    let peers: Vec<String> = parsed
        .value("peers")
        .unwrap_or_default()
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if peers.is_empty() {
        return Err(CliError::Usage(
            "--peers needs at least one HOST:PORT".into(),
        ));
    }
    let model = parsed.value("model").unwrap_or("pdp11").to_string();
    let refs: usize = parsed.value_or("refs", 20_000)?;
    let rate: u64 = parsed.value_or("rate", 50)?;
    let duration_secs: u64 = parsed.value_or("duration", 10)?;
    let keyspace: usize = parsed.value_or("keyspace", 64)?;
    let slo_p99_ms: Option<u64> = parsed.value_opt("slo-p99-ms")?;
    let timeout_secs: u64 = parsed.value_or("timeout", 600)?;
    let out = parsed
        .value("out")
        .unwrap_or("BENCH_serve.json")
        .to_string();
    let digest_path = parsed.value("digest").map(str::to_string);
    let merge = parsed.switch("merge");
    if rate == 0 || duration_secs == 0 || keyspace == 0 {
        return Err(CliError::Usage(
            "--rate, --duration and --keyspace must all be positive".into(),
        ));
    }
    let timeout = Duration::from_secs(timeout_secs.max(1));

    let word = occache_workloads::WorkloadSpec::set_by_name(&model)
        .and_then(|specs| specs.first().map(|s| s.arch().word_size()))
        .ok_or_else(|| CliError::Usage(format!("unknown model {model:?}")))?;
    let points = build_keyspace(&model, refs, keyspace, word)?;

    // Open-loop arrival schedule: one entry per tick, handed to whatever
    // worker is free. Latency is measured from the *scheduled* instant,
    // so a backed-up cluster shows up as latency, not as a lower rate.
    let total = (rate * duration_secs) as usize;
    let interval = Duration::from_nanos(1_000_000_000 / rate);
    let (tx, rx) = mpsc::channel::<(usize, Instant)>();
    let rx = Arc::new(Mutex::new(rx));
    let outcomes = Arc::new(Outcomes::default());
    let latencies = Arc::new(Mutex::new(Vec::<Duration>::with_capacity(total)));
    let digests = Arc::new(Mutex::new(Vec::<String>::new()));
    let failures = Arc::new(Mutex::new(Vec::<String>::new()));
    let points = Arc::new(points);
    let peers = Arc::new(peers);

    let workers: Vec<_> = (0..WORKERS)
        .map(|_| {
            let (rx, points, peers, outcomes, latencies, digests, failures) = (
                Arc::clone(&rx),
                Arc::clone(&points),
                Arc::clone(&peers),
                Arc::clone(&outcomes),
                Arc::clone(&latencies),
                Arc::clone(&digests),
                Arc::clone(&failures),
            );
            std::thread::spawn(move || loop {
                let job = rx.lock().map(|g| g.recv()).unwrap_or(Err(mpsc::RecvError));
                let Ok((index, scheduled)) = job else { break };
                let point = &points[index % points.len()];
                match one_request(point, &peers, timeout, &outcomes) {
                    Ok(Some(body)) => {
                        record_success(&body, scheduled, &outcomes, &latencies, &digests);
                    }
                    Ok(None) => {
                        // Attributed, non-retryable error: correct
                        // behaviour under the chaos contract, but not a
                        // success — counted, excluded from latency.
                        outcomes.attributed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(why) => {
                        if let Ok(mut f) = failures.lock() {
                            f.push(why);
                        }
                    }
                }
            })
        })
        .collect();

    let started = Instant::now();
    for i in 0..total {
        let scheduled = started + interval * (i as u32);
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        if tx.send((i, scheduled)).is_err() {
            break;
        }
    }
    drop(tx);
    for worker in workers {
        let _ = worker.join();
    }
    let wall = started.elapsed();

    let unattributed = failures.lock().map(|f| f.clone()).unwrap_or_default();
    if let Some(first) = unattributed.first() {
        return Err(CliError::Integrity(format!(
            "{} request(s) ended without an attributed error; first: {first}",
            unattributed.len()
        )));
    }

    let mut latencies = latencies.lock().map(|l| l.clone()).unwrap_or_default();
    latencies.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1].as_secs_f64()
    };
    let p50 = quantile(0.5);
    let p99 = quantile(0.99);
    let ok = outcomes.ok.load(Ordering::Relaxed);
    let cached = outcomes.cached.load(Ordering::Relaxed);
    let attributed = outcomes.attributed.load(Ordering::Relaxed);
    let failovers = outcomes.failovers.load(Ordering::Relaxed);
    let throughput = ok as f64 / wall.as_secs_f64().max(1e-9);

    if let Some(path) = &digest_path {
        let mut lines = digests.lock().map(|d| d.clone()).unwrap_or_default();
        lines.sort_unstable();
        lines.dedup();
        std::fs::write(path, lines.join("\n") + "\n")?;
    }

    let slo_met = slo_p99_ms.map(|ms| p99 * 1_000.0 <= ms as f64);
    let entry = format!(
        "{{\"peers\": {}, \"rate_rps\": {rate}, \"duration_seconds\": {duration_secs}, \
         \"keyspace\": {keyspace}, \"requests\": {total}, \"ok\": {ok}, \
         \"cached\": {cached}, \"attributed_errors\": {attributed}, \
         \"failovers\": {failovers}, \"throughput_rps\": {throughput:?}, \
         \"p50_seconds\": {p50:?}, \"p99_seconds\": {p99:?}, \
         \"slo_p99_ms\": {}, \"slo_met\": {}}}",
        peers.len(),
        slo_p99_ms.map_or("null".to_string(), |ms| ms.to_string()),
        slo_met.map_or("null".to_string(), |met| met.to_string()),
    );
    write_bench(&out, &entry, merge)?;

    let mut report = String::new();
    let _ = writeln!(
        report,
        "cluster: {} peers, open loop at {rate} req/s for {duration_secs}s ({total} arrivals, keyspace {keyspace})",
        peers.len(),
    );
    let _ = writeln!(
        report,
        "served:  {ok} ok ({cached} cached), {attributed} attributed errors, {failovers} failovers, {throughput:.1} req/s",
    );
    let _ = writeln!(
        report,
        "latency: p50 {p50:.4}s p99 {p99:.4}s (from scheduled arrival)"
    );
    if let (Some(ms), Some(met)) = (slo_p99_ms, slo_met) {
        let _ = writeln!(
            report,
            "slo:     p99 <= {ms}ms -> {}",
            if met { "met" } else { "MISSED" }
        );
    }
    if let Some(path) = &digest_path {
        let _ = writeln!(report, "digest:  -> {path}");
    }
    let _ = writeln!(report, "wrote {out}");

    if slo_met == Some(false) {
        return Err(CliError::Integrity(format!(
            "p99 {:.1}ms exceeds the {}ms SLO\n{report}",
            p99 * 1_000.0,
            slo_p99_ms.unwrap_or(0),
        )));
    }
    Ok(report)
}

/// Builds the cycled keyspace: `keyspace` distinct valid design points
/// spread over the Table 1 grid at power-of-two net sizes, each carrying
/// its precomputed request body and rendezvous route key.
fn build_keyspace(
    model: &str,
    refs: usize,
    keyspace: usize,
    word: u64,
) -> Result<Vec<Point>, CliError> {
    let mut points = Vec::with_capacity(keyspace);
    'outer: for exp in 8..=14u32 {
        let net = 1u64 << exp;
        for (block, sub) in occache_experiments::sweep::table1_pairs(net, word) {
            let config = CacheConfig::builder()
                .net_size(net)
                .block_size(block)
                .sub_block_size(sub)
                .word_size(word)
                .build()
                .map_err(|e| CliError::Usage(format!("keyspace point rejected: {e}")))?;
            let body = format!(
                "{{\"model\":\"{model}\",\"refs\":{refs},\
                 \"config\":{{\"net\":{net},\"block\":{block},\"sub\":{sub},\
                 \"assoc\":{},\"word\":{word}}}}}",
                config.associativity(),
            );
            points.push(Point {
                body,
                route: route_key(model, refs, 0, &config),
            });
            if points.len() == keyspace {
                break 'outer;
            }
        }
    }
    if points.len() < keyspace {
        return Err(CliError::Usage(format!(
            "keyspace {keyspace} exceeds the {} grid points available",
            points.len()
        )));
    }
    Ok(points)
}

/// One arrival: try each ranked peer in rendezvous order, a couple of
/// transport attempts per peer on a fresh connection each. Returns
/// `Ok(Some(body))` on 200, `Ok(None)` on an attributed non-retryable
/// error, `Err` when every ranked peer failed without attribution.
fn one_request(
    point: &Point,
    peers: &[String],
    timeout: Duration,
    outcomes: &Outcomes,
) -> Result<Option<String>, String> {
    let order = ranked(point.route, peers);
    let mut last = String::new();
    for (position, addr) in order.iter().enumerate() {
        if position > 0 {
            outcomes.failovers.fetch_add(1, Ordering::Relaxed);
        }
        for _ in 0..ATTEMPTS_PER_PEER {
            let response = HttpClient::connect_with_timeout(addr, timeout)
                .and_then(|mut c| c.post("/v1/simulate", &point.body));
            match response {
                Ok(r) if r.status == 200 => return Ok(Some(r.body)),
                Ok(r) => match ErrorBody::parse(&r.body) {
                    Ok(body) if body.retryable => {
                        last = format!("{addr}: status {} ({})", r.status, body.code);
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Ok(_) => return Ok(None),
                    Err(why) => {
                        return Err(format!(
                            "{addr}: status {} with unattributed body {:?} ({why})",
                            r.status, r.body
                        ))
                    }
                },
                Err(e) => {
                    // Transport failure: a dead or unreachable shard.
                    // Failing over to the next ranked survivor *is* the
                    // attributed path — the ranking names the owner.
                    last = format!("{addr}: {e}");
                    break;
                }
            }
        }
    }
    Err(format!("every ranked peer failed; last: {last}"))
}

/// Records one successful response: latency from the scheduled arrival,
/// cache attribution, and the digest line.
fn record_success(
    body: &str,
    scheduled: Instant,
    outcomes: &Outcomes,
    latencies: &Mutex<Vec<Duration>>,
    digests: &Mutex<Vec<String>>,
) {
    outcomes.ok.fetch_add(1, Ordering::Relaxed);
    if let Ok(mut l) = latencies.lock() {
        l.push(scheduled.elapsed());
    }
    if let Ok(doc) = Json::parse(body) {
        if doc.get("cached").and_then(Json::as_bool) == Some(true) {
            outcomes.cached.fetch_add(1, Ordering::Relaxed);
        }
        let bits = |field: &str| doc.get(field).and_then(Json::as_f64).map(f64::to_bits);
        if let (Some(key), Some(miss), Some(traffic), Some(nibble), Some(redundant)) = (
            doc.get("key").and_then(Json::as_str),
            bits("miss_ratio"),
            bits("traffic_ratio"),
            bits("nibble_traffic_ratio"),
            bits("redundant_load_fraction"),
        ) {
            if let Ok(mut d) = digests.lock() {
                d.push(format!(
                    "{key} {miss:016x} {traffic:016x} {nibble:016x} {redundant:016x}"
                ));
            }
        }
    }
}

/// Writes the cluster entry to `out`: standalone JSON when `merge` is
/// off or the file is absent, otherwise spliced as a `"cluster"` member
/// into the existing closed-loop `BENCH_serve.json` — textually, so the
/// float bit patterns already in the file survive untouched.
fn write_bench(out: &str, entry: &str, merge: bool) -> Result<(), CliError> {
    if merge {
        if let Ok(existing) = std::fs::read_to_string(out) {
            let trimmed = existing.trim_end();
            if let Some(prefix) = trimmed.strip_suffix('}') {
                let prefix = prefix.trim_end();
                let joiner = if prefix.ends_with('{') { "" } else { ",\n" };
                std::fs::write(out, format!("{prefix}{joiner}\"cluster\": {entry}\n}}\n"))?;
                return Ok(());
            }
            return Err(CliError::Integrity(format!(
                "--merge: {out} does not end in an object to splice into"
            )));
        }
    }
    std::fs::write(out, format!("{{\"cluster\": {entry}}}\n"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyspace_is_distinct_and_sized() {
        let points = build_keyspace("pdp11", 2_000, 48, 2).unwrap();
        assert_eq!(points.len(), 48);
        let mut routes: Vec<u64> = points.iter().map(|p| p.route).collect();
        routes.sort_unstable();
        routes.dedup();
        assert_eq!(routes.len(), 48, "route keys must be distinct");
    }

    #[test]
    fn oversized_keyspace_is_a_usage_error() {
        let err = build_keyspace("pdp11", 2_000, 100_000, 2).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn merge_splices_into_an_existing_object() {
        let dir = std::env::temp_dir().join("occache_cluster_merge");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let path_str = path.to_str().unwrap();
        std::fs::write(&path, "{\n\"speedup\": 2.5\n}\n").unwrap();
        write_bench(path_str, "{\"ok\": 1}", true).unwrap();
        let merged = std::fs::read_to_string(&path).unwrap();
        assert!(merged.contains("\"speedup\": 2.5"), "{merged}");
        assert!(merged.contains("\"cluster\": {\"ok\": 1}"), "{merged}");
        occache_serve::json::Json::parse(&merged).expect("merged bench must stay valid JSON");
        // Without an existing file the entry stands alone.
        std::fs::remove_file(&path).unwrap();
        write_bench(path_str, "{\"ok\": 2}", true).unwrap();
        let fresh = std::fs::read_to_string(&path).unwrap();
        occache_serve::json::Json::parse(&fresh).expect("fresh bench must be valid JSON");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn free_ports_are_distinct() {
        let out = free_ports(4).unwrap();
        let mut ports: Vec<&str> = out.lines().collect();
        assert_eq!(ports.len(), 4);
        ports.sort_unstable();
        ports.dedup();
        assert_eq!(ports.len(), 4, "ports must be distinct: {out}");
    }
}
