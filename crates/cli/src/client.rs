//! A minimal blocking HTTP/1.1 client for talking to `occache-serve`.
//!
//! One keep-alive connection per client; requests are closed-loop (each
//! waits for its response). Std-only, like the server it talks to.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::CliError;

/// How long a single response may take before the client gives up.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(600);

/// Responses larger than this are refused (the service never sends
/// bodies anywhere near it).
const MAX_RESPONSE_BODY: usize = 64 * 1024 * 1024;

/// A parsed HTTP response: status code and body.
#[derive(Debug)]
pub struct Response {
    /// The status code (200, 429, ...).
    pub status: u16,
    /// The response body, assumed UTF-8.
    pub body: String,
}

/// A keep-alive HTTP/1.1 connection to one server.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Io`] when the connection cannot be made.
    pub fn connect(addr: &str) -> Result<HttpClient, CliError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(RESPONSE_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            addr: addr.to_string(),
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and reads the full response. `body` is sent as
    /// `application/json` when present.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Io`] on transport failure or a malformed
    /// response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, CliError> {
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n{}Connection: keep-alive\r\n\r\n",
            self.addr,
            payload.len(),
            if body.is_some() {
                "Content-Type: application/json\r\n"
            } else {
                ""
            },
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(payload.as_bytes())?;
        stream.flush()?;
        self.read_response()
    }

    /// Convenience: `POST` a JSON body.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`].
    pub fn post(&mut self, path: &str, body: &str) -> Result<Response, CliError> {
        self.request("POST", path, Some(body))
    }

    /// Convenience: `GET`.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`].
    pub fn get(&mut self, path: &str) -> Result<Response, CliError> {
        self.request("GET", path, None)
    }

    fn read_response(&mut self) -> Result<Response, CliError> {
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let mut parts = line.split_whitespace();
        let status = match (parts.next(), parts.next()) {
            (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
                .parse::<u16>()
                .map_err(|_| bad(format!("unparseable status {code:?}")))?,
            _ => return Err(bad(format!("bad status line {line:?}"))),
        };
        let mut content_length: Option<usize> = None;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header)?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    let n = value
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| bad(format!("bad content-length {value:?}")))?;
                    content_length = Some(n);
                }
            }
        }
        let len = content_length.ok_or_else(|| bad("response without content-length".into()))?;
        if len > MAX_RESPONSE_BODY {
            return Err(bad(format!("response body of {len} bytes is too large")));
        }
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8".into()))?;
        Ok(Response { status, body })
    }
}

fn bad(message: String) -> CliError {
    CliError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("malformed HTTP response: {message}"),
    ))
}
