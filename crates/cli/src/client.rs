//! A minimal blocking HTTP/1.1 client for talking to `occache-serve`.
//!
//! One keep-alive connection per client; requests are closed-loop (each
//! waits for its response). Std-only, like the server it talks to.
//!
//! The response reader is deliberately strict: a torn or truncated
//! response (chaos injection, mid-write crash) surfaces as an error the
//! caller can retry on a fresh connection — never a panic, never a
//! silently short body. [`read_response_from`] is generic over
//! [`BufRead`] so property tests can feed it arbitrary byte prefixes.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::CliError;

/// How long a single response may take before the client gives up.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(600);

/// Responses larger than this are refused (the service never sends
/// bodies anywhere near it).
const MAX_RESPONSE_BODY: usize = 64 * 1024 * 1024;

/// A parsed HTTP response: status code, body, and the `Retry-After`
/// header when the server sent one (429 backpressure).
#[derive(Debug)]
pub struct Response {
    /// The status code (200, 429, ...).
    pub status: u16,
    /// The response body, assumed UTF-8.
    pub body: String,
    /// Whole seconds from a `Retry-After` header, if present.
    pub retry_after: Option<u64>,
}

/// A keep-alive HTTP/1.1 connection to one server.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects to `addr` (`host:port`) with the default 600 s response
    /// timeout.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Io`] when the connection cannot be made.
    pub fn connect(addr: &str) -> Result<HttpClient, CliError> {
        HttpClient::connect_with_timeout(addr, RESPONSE_TIMEOUT)
    }

    /// Connects to `addr` (`host:port`) and bounds every subsequent
    /// read by `timeout`, so a stalled server (chaos `stall-read`, a
    /// hung worker) turns into a retryable error instead of a hang.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Io`] when the connection cannot be made.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> Result<HttpClient, CliError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            addr: addr.to_string(),
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and reads the full response. `body` is sent as
    /// `application/json` when present.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Io`] on transport failure or a malformed
    /// response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Response, CliError> {
        let payload = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n{}Connection: keep-alive\r\n\r\n",
            self.addr,
            payload.len(),
            if body.is_some() {
                "Content-Type: application/json\r\n"
            } else {
                ""
            },
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(payload.as_bytes())?;
        stream.flush()?;
        read_response_from(&mut self.reader)
    }

    /// Convenience: `POST` a JSON body.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`].
    pub fn post(&mut self, path: &str, body: &str) -> Result<Response, CliError> {
        self.request("POST", path, Some(body))
    }

    /// Convenience: `GET`.
    ///
    /// # Errors
    ///
    /// As [`HttpClient::request`].
    pub fn get(&mut self, path: &str) -> Result<Response, CliError> {
        self.request("GET", path, None)
    }
}

/// Reads one HTTP/1.1 response (status line, headers, Content-Length
/// body) from any buffered stream. Any truncation — a torn status
/// line, headers cut short, a body shorter than its `Content-Length` —
/// is an error, never a short read passed off as success.
///
/// # Errors
///
/// Returns [`CliError::Io`] on transport failure or any framing
/// violation.
pub fn read_response_from<R: BufRead>(reader: &mut R) -> Result<Response, CliError> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if !line.ends_with('\n') {
        return Err(bad(format!("truncated status line {line:?}")));
    }
    let mut parts = line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| bad(format!("unparseable status {code:?}")))?,
        _ => return Err(bad(format!("bad status line {line:?}"))),
    };
    let mut content_length: Option<usize> = None;
    let mut retry_after: Option<u64> = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        if !header.ends_with('\n') {
            return Err(bad("truncated header block".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let n = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| bad(format!("bad content-length {value:?}")))?;
                content_length = Some(n);
            } else if name.eq_ignore_ascii_case("retry-after") {
                retry_after = value.trim().parse::<u64>().ok();
            }
        }
    }
    let len = content_length.ok_or_else(|| bad("response without content-length".into()))?;
    if len > MAX_RESPONSE_BODY {
        return Err(bad(format!("response body of {len} bytes is too large")));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("response body is not UTF-8".into()))?;
    Ok(Response {
        status,
        body,
        retry_after,
    })
}

fn bad(message: String) -> CliError {
    CliError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("malformed HTTP response: {message}"),
    ))
}

#[cfg(test)]
mod tests {
    use std::io::Read as _;

    use super::*;

    #[test]
    fn parses_full_response_with_retry_after() {
        let wire =
            "HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\nRetry-After: 7\r\n\r\nhi";
        let response = read_response_from(&mut wire.as_bytes()).unwrap();
        assert_eq!(response.status, 429);
        assert_eq!(response.body, "hi");
        assert_eq!(response.retry_after, Some(7));
    }

    #[test]
    fn truncated_responses_error_out() {
        let wire = "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        for cut in 0..wire.len() {
            let err = read_response_from(&mut wire.as_bytes().take(cut as u64));
            assert!(err.is_err(), "prefix of {cut} bytes parsed as a response");
        }
        assert!(read_response_from(&mut wire.as_bytes()).is_err());
    }
}
