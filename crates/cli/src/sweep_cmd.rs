//! `occache-sweep`: run the Table 1 design-space grid for one architecture.

use std::fmt::Write as _;

use occache_experiments::report::{points_to_csv, write_result_in};
use occache_experiments::sweep::{
    evaluate_points_isolated, failure_note, materialize, standard_config, table1_pairs,
};
use occache_workloads::{Architecture, WorkloadSpec};

use crate::args::parse;
use crate::CliError;

/// Usage text for `occache-sweep`.
pub const USAGE: &str = "\
occache-sweep — Table 1 design-space sweep for one architecture

USAGE:
  occache-sweep --arch ARCH [--nets LIST] [--refs N] [--warmup N] [--csv FILE]

  --arch ARCH     pdp11 | z8000 | vax11 | s370
  --nets LIST     comma-separated net sizes           [64,256,1024]
  --refs N        references per trace                [1000000]
  --warmup N      uncounted warm-up prefix            [0]
  --csv FILE      also write the results as CSV
  --verify        verify a results directory instead of sweeping
                  (see occache-verify --help for its options)

Averages the miss/traffic/nibble ratios over the architecture's trace set
(the paper's Tables 2-5), exactly as Table 7 does.
";

const VALUE_FLAGS: &[&str] = &["arch", "nets", "refs", "warmup", "csv"];
const BOOL_FLAGS: &[&str] = &["help"];

fn parse_arch(name: &str) -> Result<Architecture, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "pdp11" | "pdp-11" => Ok(Architecture::Pdp11),
        "z8000" => Ok(Architecture::Z8000),
        "vax11" | "vax-11" | "vax" => Ok(Architecture::Vax11),
        "s370" | "370" | "s/370" => Ok(Architecture::S370),
        other => Err(CliError::Usage(format!(
            "--arch: expected pdp11|z8000|vax11|s370, got {other:?}"
        ))),
    }
}

fn parse_nets(list: &str) -> Result<Vec<u64>, CliError> {
    list.split(',')
        .map(|token| {
            let net: u64 = token
                .trim()
                .parse()
                .map_err(|_| CliError::Usage(format!("--nets: bad size {token:?}")))?;
            if !net.is_power_of_two() || net < 16 {
                return Err(CliError::Usage(format!(
                    "--nets: {net} is not a power of two >= 16"
                )));
            }
            Ok(net)
        })
        .collect()
}

/// Runs the command and returns the report to print.
///
/// # Errors
///
/// Returns a [`CliError`] on bad usage or I/O failure writing the CSV.
pub fn run<S: AsRef<str>>(argv: &[S]) -> Result<String, CliError> {
    if argv.iter().any(|a| a.as_ref() == "--verify") {
        return crate::verify_cmd::run(argv);
    }
    let parsed = parse(argv, VALUE_FLAGS, BOOL_FLAGS)?;
    if parsed.switch("help") {
        return Ok(USAGE.to_string());
    }
    // Reject a malformed OCCACHE_JOBS / OCCACHE_SLICE_THREADS up front;
    // the sweep pool itself is lenient and would silently fall back to
    // hardware parallelism.
    occache_experiments::sweep::try_jobs().map_err(CliError::Usage)?;
    occache_experiments::sweep::try_slice_threads().map_err(CliError::Usage)?;
    let arch = parse_arch(
        parsed
            .value("arch")
            .ok_or_else(|| CliError::Usage("--arch is required".into()))?,
    )?;
    let nets = parse_nets(parsed.value("nets").unwrap_or("64,256,1024"))?;
    let refs = parsed.value_or("refs", 1_000_000usize)?;
    let warmup = parsed.value_or("warmup", 0usize)?;

    let traces = materialize(&WorkloadSpec::set_for(arch), refs);
    let mut points = Vec::new();
    let mut failures = Vec::new();
    for &net in &nets {
        let configs: Vec<_> = table1_pairs(net, arch.word_size())
            .into_iter()
            .map(|(block, sub)| standard_config(arch, net, block, sub))
            .collect();
        let outcome = evaluate_points_isolated(&configs, &traces, warmup);
        points.extend(outcome.points);
        failures.extend(outcome.failures);
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{arch}: {} traces x {refs} refs, warm-up {warmup}",
        traces.len()
    );
    let _ = writeln!(
        out,
        "{:>6} {:>7} {:>9} {:>9} {:>9}",
        "gross", "blk,sub", "miss", "traffic", "nibble"
    );
    for p in &points {
        let c = p.config;
        let _ = writeln!(
            out,
            "{:>6} {:>7} {:>9.4} {:>9.4} {:>9.4}",
            p.gross_size,
            format!("{},{}", c.block_size(), c.sub_block_size()),
            p.miss_ratio,
            p.traffic_ratio,
            p.nibble_traffic_ratio
        );
    }
    if let Some(note) = failure_note(&failures) {
        let _ = writeln!(out, "\n{note}");
    }
    if let Some(path) = parsed.value("csv") {
        // Atomic write (temp + fsync + rename): an interrupted sweep never
        // leaves a truncated CSV that looks complete.
        let target = std::path::Path::new(path);
        let file_name = target
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| CliError::Usage(format!("--csv: {path:?} has no file name")))?;
        let dir = match target.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => std::path::Path::new("."),
        };
        write_result_in(dir, file_name, &points_to_csv(arch.name(), &points))?;
        let _ = writeln!(out, "\ncsv written to {path}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_prints_usage() {
        assert!(run(&["--help"]).unwrap().contains("occache-sweep"));
    }

    #[test]
    fn sweeps_one_net_size() {
        let out = run(&["--arch", "pdp11", "--nets", "64", "--refs", "5000"]).unwrap();
        assert!(out.contains("16,8"), "{out}");
        assert!(out.contains("2,2"), "{out}");
    }

    #[test]
    fn writes_csv() {
        let dir = std::env::temp_dir().join("occache_sweep_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.csv");
        run(&[
            "--arch",
            "z8000",
            "--nets",
            "64",
            "--refs",
            "3000",
            "--csv",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("arch,net,block,sub"));
        assert!(text.lines().count() > 5);
    }

    #[test]
    fn rejects_bad_arch_and_nets() {
        assert!(run(&["--arch", "mips"]).is_err());
        assert!(run(&["--arch", "pdp11", "--nets", "100"]).is_err());
        assert!(run(&["--nets", "64"]).is_err());
    }
}
