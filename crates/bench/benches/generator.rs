//! Synthetic trace generation throughput, per architecture.
//!
//! Every experiment consumes generated traces, so generator speed bounds
//! the whole harness; this bench tracks references generated per second
//! for each architecture's baseline profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use occache_workloads::{Architecture, Profile, ProgramGenerator};

const TRACE_LEN: usize = 100_000;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    for arch in Architecture::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(arch.name()),
            &arch,
            |b, &arch| {
                b.iter(|| {
                    let generator = ProgramGenerator::new(Profile::baseline(arch), 1);
                    generator
                        .take(TRACE_LEN)
                        .map(|r| r.address().value())
                        .sum::<u64>()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
