//! End-to-end regeneration cost of every paper artifact.
//!
//! One bench per table and figure of the paper: each runs the same code
//! path as the corresponding `occache-experiments` binary, at a reduced
//! trace length so the suite completes quickly. Besides tracking harness
//! performance, these benches are executable proof that every artifact
//! regenerates from scratch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use occache_experiments::runs::{
    run_ablations, run_fig9, run_figure, run_headline, run_risc2, run_table6, run_table7,
    run_table8, Workbench,
};

/// Reduced trace length for benchmarking (the binaries default to the
/// paper's 1 million).
const TRACE_LEN: usize = 20_000;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("artifact");
    group.sample_size(10);
    group.bench_function("table6", |b| {
        b.iter(|| run_table6(&mut Workbench::new(TRACE_LEN)).report.len())
    });
    group.bench_function("table7", |b| {
        b.iter(|| run_table7(&mut Workbench::new(TRACE_LEN)).report.len())
    });
    group.bench_function("table8", |b| {
        b.iter(|| run_table8(&mut Workbench::new(TRACE_LEN)).report.len())
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("artifact");
    group.sample_size(10);
    for figure in 1u8..=8 {
        group.bench_with_input(BenchmarkId::new("figure", figure), &figure, |b, &figure| {
            b.iter(|| {
                run_figure(&mut Workbench::new(TRACE_LEN), figure)
                    .report
                    .len()
            })
        });
    }
    group.bench_function("figure/9", |b| {
        b.iter(|| run_fig9(&mut Workbench::new(TRACE_LEN)).report.len())
    });
    group.finish();
}

fn bench_extras(c: &mut Criterion) {
    let mut group = c.benchmark_group("artifact");
    group.sample_size(10);
    group.bench_function("risc2", |b| {
        b.iter(|| run_risc2(&mut Workbench::new(TRACE_LEN)).report.len())
    });
    group.bench_function("ablations", |b| {
        b.iter(|| run_ablations(&mut Workbench::new(TRACE_LEN)).report.len())
    });
    group.bench_function("headline", |b| {
        b.iter(|| run_headline(&mut Workbench::new(TRACE_LEN)).report.len())
    });
    group.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_extras);
criterion_main!(benches);
