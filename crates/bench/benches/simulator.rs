//! Per-access cost of the sub-block cache simulator.
//!
//! Measures the simulation engine itself (the paper's "trace-driven cache
//! simulator [18]"): accesses per second across cache geometries,
//! replacement policies, fetch policies, and the Mattson stack-distance
//! analyzer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use occache_bench::bench_trace;
use occache_core::{
    CacheConfig, FetchPolicy, InstructionBuffer, LruStackAnalyzer, ReplacementPolicy,
    SetAssocLruAnalyzer, SubBlockCache,
};
use occache_workloads::Architecture;

const TRACE_LEN: usize = 100_000;

fn config(
    net: u64,
    block: u64,
    sub: u64,
    policy: ReplacementPolicy,
    fetch: FetchPolicy,
) -> CacheConfig {
    CacheConfig::builder()
        .net_size(net)
        .block_size(block)
        .sub_block_size(sub)
        .word_size(2)
        .replacement(policy)
        .fetch(fetch)
        .build()
        .expect("benchmark geometry is valid")
}

fn bench_geometries(c: &mut Criterion) {
    let trace = bench_trace(Architecture::Pdp11, TRACE_LEN);
    let mut group = c.benchmark_group("access/geometry");
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    for (net, block, sub) in [
        (64u64, 8u64, 4u64),
        (256, 16, 4),
        (1024, 16, 8),
        (1024, 32, 2),
        (16 * 1024, 1024, 64), // the 360/85 sector organisation
    ] {
        let cfg = config(net, block, sub, ReplacementPolicy::Lru, FetchPolicy::Demand);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{net}B_{block},{sub}")),
            &cfg,
            |b, &cfg| {
                b.iter(|| {
                    let mut cache = SubBlockCache::new(cfg);
                    cache.run(trace.iter().copied());
                    cache.metrics().misses()
                });
            },
        );
    }
    group.finish();
}

fn bench_replacement(c: &mut Criterion) {
    let trace = bench_trace(Architecture::Pdp11, TRACE_LEN);
    let mut group = c.benchmark_group("access/replacement");
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ] {
        let cfg = config(1024, 16, 8, policy, FetchPolicy::Demand);
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.to_string()),
            &cfg,
            |b, &cfg| {
                b.iter(|| {
                    let mut cache = SubBlockCache::new(cfg);
                    cache.run(trace.iter().copied());
                    cache.metrics().misses()
                });
            },
        );
    }
    group.finish();
}

fn bench_fetch_policies(c: &mut Criterion) {
    let trace = bench_trace(Architecture::Z8000, TRACE_LEN);
    let mut group = c.benchmark_group("access/fetch");
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    for (name, fetch) in [
        ("demand", FetchPolicy::Demand),
        ("load_forward", FetchPolicy::LOAD_FORWARD),
        (
            "load_forward_optimized",
            FetchPolicy::LoadForward {
                remember_valid: true,
            },
        ),
        (
            "prefetch_on_miss",
            FetchPolicy::PrefetchNext { tagged: false },
        ),
        (
            "tagged_prefetch",
            FetchPolicy::PrefetchNext { tagged: true },
        ),
    ] {
        let cfg = config(256, 16, 2, ReplacementPolicy::Lru, fetch);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, &cfg| {
            b.iter(|| {
                let mut cache = SubBlockCache::new(cfg);
                cache.run(trace.iter().copied());
                cache.metrics().misses()
            });
        });
    }
    group.finish();
}

fn bench_stack_distance(c: &mut Criterion) {
    let trace = bench_trace(Architecture::Z8000, TRACE_LEN);
    let mut group = c.benchmark_group("stackdist");
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    group.bench_function("lru_analyzer_16B_blocks", |b| {
        b.iter(|| {
            let mut an = LruStackAnalyzer::new(16);
            for r in &trace {
                an.access(r.address());
            }
            an.misses_at_capacity(64)
        });
    });
    group.bench_function("set_assoc_analyzer_16_sets", |b| {
        b.iter(|| {
            let mut an = SetAssocLruAnalyzer::new(16, 16);
            for r in &trace {
                an.access(r.address());
            }
            an.misses_at_ways(4)
        });
    });
    group.finish();
}

fn bench_instruction_buffers(c: &mut Criterion) {
    let trace = bench_trace(Architecture::Vax11, TRACE_LEN);
    let mut group = c.benchmark_group("ibuffer");
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    for (name, buffers, blocks) in [("vax780", 1usize, 1u64), ("cray_4x16", 4, 16)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut buffer = InstructionBuffer::new(buffers, blocks, 8, buffers > 1);
                for r in &trace {
                    buffer.fetch(r.address());
                }
                buffer.bytes_fetched()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_geometries,
    bench_replacement,
    bench_fetch_policies,
    bench_stack_distance,
    bench_instruction_buffers
);
criterion_main!(benches);
