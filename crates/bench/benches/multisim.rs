//! One-pass multi-configuration engine vs N independent direct
//! simulations.
//!
//! The claim under test is the paper's "LRU permits more efficient
//! simulation": one engine pass over a trace yields the metrics of every
//! cache size in a slice, so a slice of N sizes should cost well under N
//! direct runs. Both sides simulate identical work (same trace, same
//! configurations, bit-identical outputs — see `tests/multisim_equiv.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use occache_bench::bench_trace;
use occache_core::{simulate, simulate_many, CacheConfig};
use occache_workloads::Architecture;

const TRACE_LEN: usize = 100_000;

/// A Table 7 column: one (block, sub) geometry at the paper's three nets.
fn slice_configs(block: u64, sub: u64) -> Vec<CacheConfig> {
    [64u64, 256, 1024]
        .iter()
        .map(|&net| {
            CacheConfig::builder()
                .net_size(net)
                .block_size(block)
                .sub_block_size(sub)
                .word_size(2)
                .build()
                .expect("benchmark geometry is valid")
        })
        .collect()
}

fn bench_one_pass_vs_direct(c: &mut Criterion) {
    let trace = bench_trace(Architecture::Pdp11, TRACE_LEN);
    let mut group = c.benchmark_group("multisim");
    group.throughput(Throughput::Elements(TRACE_LEN as u64));
    for (block, sub) in [(8u64, 4u64), (16, 8), (16, 2)] {
        let configs = slice_configs(block, sub);
        group.bench_with_input(
            BenchmarkId::new("one_pass", format!("{block},{sub}x{}", configs.len())),
            &configs,
            |b, configs| {
                b.iter(|| {
                    simulate_many(configs, trace.iter().copied(), 0)
                        .expect("slice is engine-eligible")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("n_direct", format!("{block},{sub}x{}", configs.len())),
            &configs,
            |b, configs| {
                b.iter(|| {
                    configs
                        .iter()
                        .map(|&cfg| simulate(cfg, trace.iter().copied(), 0))
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_one_pass_vs_direct);
criterion_main!(benches);
