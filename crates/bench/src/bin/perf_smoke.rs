//! CI perf smoke: regenerate a Table-7-style grid three ways — direct
//! simulation over materialized traces, the sliced one-pass sweep over
//! the same materialized traces, and the sliced sweep fed by streaming
//! generation — and record wall-clock and throughput in
//! `BENCH_sweep.json`. A fourth pass re-runs the grid under FIFO
//! replacement, timing the one-pass FIFO engine against per-config
//! direct simulation, so the trajectory gate covers every shipped
//! engine, not just the LRU fast path.
//!
//! All paths simulate identical work and are checked here to produce
//! bit-identical ratios before the timing is trusted; the speedup and
//! throughput figures are therefore like-for-like measurements, not a
//! benchmark of three different computations. The headline
//! `effective_refs_per_sec` comes from the **streamed** sliced sweep —
//! generation fused into simulation, nothing materialized — because
//! that is the path real sweeps take; its wall clock is the best of
//! [`REPS`] passes so one scheduler hiccup on a shared box does not
//! masquerade as a regression (`ci.sh` gates on the committed value).

use std::time::Instant;

use occache_core::CacheConfig;
use occache_experiments::sweep::{
    evaluate_point, evaluate_results_sliced, evaluate_results_with, materialize, plan_units,
    slice_workers, standard_config, stream_traces, table1_pairs, DesignPoint, PointError,
};
use occache_workloads::{Architecture, WorkloadSpec};

/// Default references per trace; `OCCACHE_REFS` overrides (the paper's
/// 1 M is ~10× this smoke size).
const REFS_PER_TRACE: usize = 100_000;

/// Timed passes for the streamed phase; the minimum wall is reported.
const REPS: usize = 5;

fn refs_per_trace() -> usize {
    std::env::var("OCCACHE_REFS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(REFS_PER_TRACE)
}

fn points(results: Vec<Result<DesignPoint, PointError>>) -> Vec<DesignPoint> {
    results
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .expect("perf smoke grid must evaluate cleanly")
}

fn main() {
    let arch = Architecture::Pdp11;
    let refs_per_trace = refs_per_trace();
    let specs = WorkloadSpec::set_for(arch);
    let traces = materialize(&specs, refs_per_trace);
    let streamed = stream_traces(&specs, refs_per_trace);
    let configs: Vec<CacheConfig> = [64u64, 256, 1024]
        .into_iter()
        .flat_map(|net| {
            table1_pairs(net, arch.word_size())
                .into_iter()
                .map(move |(b, s)| standard_config(arch, net, b, s))
        })
        .collect();

    // Pure generation drain: what the fused path folds into the engine
    // pass, reported separately so trajectory points stay attributable.
    let t = Instant::now();
    let mut generated = 0usize;
    for trace in &streamed {
        generated += trace.iter().count();
    }
    let gen_s = t.elapsed().as_secs_f64();
    assert_eq!(generated, streamed.len() * refs_per_trace);

    let t0 = Instant::now();
    let direct = points(evaluate_results_with(&configs, &traces, 0, evaluate_point));
    let direct_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let sliced = points(evaluate_results_sliced(&configs, &traces, 0));
    let sliced_s = t1.elapsed().as_secs_f64();

    let mut fused = sliced.clone();
    let mut fused_s = f64::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        fused = points(evaluate_results_sliced(&configs, &streamed, 0));
        fused_s = fused_s.min(t.elapsed().as_secs_f64());
    }

    for ((d, s), f) in direct.iter().zip(&sliced).zip(&fused) {
        assert_eq!(d.config, s.config);
        assert_eq!(d.config, f.config);
        assert!(
            d.miss_ratio == s.miss_ratio && d.traffic_ratio == s.traffic_ratio,
            "sliced sweep diverged from direct at {}: timing would be meaningless",
            d.config
        );
        assert!(
            d.miss_ratio == f.miss_ratio && d.traffic_ratio == f.traffic_ratio,
            "streamed sweep diverged from direct at {}: timing would be meaningless",
            d.config
        );
    }

    // The same grid down the FIFO axis: per-config direct simulation vs
    // the one-pass FIFO slice engine, bit-identity asserted before the
    // timing is trusted (exactly as above for LRU).
    let fifo_configs: Vec<CacheConfig> = configs
        .iter()
        .map(|c| {
            CacheConfig::builder()
                .net_size(c.net_size())
                .block_size(c.block_size())
                .sub_block_size(c.sub_block_size())
                .word_size(c.word_size())
                .replacement(occache_core::ReplacementPolicy::Fifo)
                .build()
                .expect("FIFO twin of a Table-1 geometry is valid")
        })
        .collect();
    let t2 = Instant::now();
    let fifo_direct = points(evaluate_results_with(
        &fifo_configs,
        &traces,
        0,
        evaluate_point,
    ));
    let fifo_direct_s = t2.elapsed().as_secs_f64();
    let mut fifo_sliced = fifo_direct.clone();
    let mut fifo_sim_s = f64::MAX;
    for _ in 0..REPS {
        let t = Instant::now();
        fifo_sliced = points(evaluate_results_sliced(&fifo_configs, &traces, 0));
        fifo_sim_s = fifo_sim_s.min(t.elapsed().as_secs_f64());
    }
    for (d, s) in fifo_direct.iter().zip(&fifo_sliced) {
        assert_eq!(d.config, s.config);
        assert!(
            d.miss_ratio == s.miss_ratio && d.traffic_ratio == s.traffic_ratio,
            "FIFO sliced sweep diverged from direct at {}: timing would be meaningless",
            d.config
        );
    }

    let threads = slice_workers(plan_units(&configs).len() * traces.len());
    let total_refs = (configs.len() * traces.len() * refs_per_trace) as f64;
    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"grid\": \"pdp11 Table 7 nets 64/256/1024\",\n  \
         \"points\": {},\n  \"traces\": {},\n  \"refs_per_trace\": {},\n  \
         \"threads\": {},\n  \"streamed\": true,\n  \
         \"direct_wall_s\": {:.3},\n  \"sliced_wall_s\": {:.3},\n  \
         \"gen_wall_s\": {:.3},\n  \"sim_wall_s\": {:.3},\n  \"speedup\": {:.2},\n  \
         \"effective_refs_per_sec\": {:.0},\n  \
         \"fifo_direct_wall_s\": {:.3},\n  \"fifo_sim_wall_s\": {:.3},\n  \
         \"fifo_vs_direct\": {:.2},\n  \"fifo_refs_per_sec\": {:.0}\n}}\n",
        configs.len(),
        traces.len(),
        refs_per_trace,
        threads,
        direct_s,
        sliced_s,
        gen_s,
        fused_s,
        direct_s / fused_s,
        total_refs / fused_s,
        fifo_direct_s,
        fifo_sim_s,
        fifo_direct_s / fifo_sim_s,
        total_refs / fifo_sim_s,
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    print!("{json}");
    eprintln!(
        "perf smoke: direct {direct_s:.3}s, sliced {sliced_s:.3}s, \
         streamed {fused_s:.3}s best-of-{REPS} (gen alone {gen_s:.3}s, {:.2}x); \
         fifo direct {fifo_direct_s:.3}s vs engine {fifo_sim_s:.3}s ({:.2}x)",
        direct_s / fused_s,
        fifo_direct_s / fifo_sim_s,
    );
}
