//! CI perf smoke: regenerate a Table-7-style grid twice — direct
//! simulation vs the sliced one-pass sweep — and record wall-clock and
//! throughput in `BENCH_sweep.json`.
//!
//! The two paths simulate identical work and are checked here to produce
//! bit-identical ratios before the timing is trusted; the speedup figure
//! is therefore a like-for-like measurement, not a benchmark of two
//! different computations.

use std::time::Instant;

use occache_core::CacheConfig;
use occache_experiments::sweep::{
    evaluate_point, evaluate_results_sliced, evaluate_results_with, materialize, standard_config,
    table1_pairs, DesignPoint, PointError,
};
use occache_workloads::{Architecture, WorkloadSpec};

/// Default references per trace; `OCCACHE_REFS` overrides (the paper's
/// 1 M is ~10× this smoke size).
const REFS_PER_TRACE: usize = 100_000;

fn refs_per_trace() -> usize {
    std::env::var("OCCACHE_REFS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(REFS_PER_TRACE)
}

fn points(results: Vec<Result<DesignPoint, PointError>>) -> Vec<DesignPoint> {
    results
        .into_iter()
        .collect::<Result<Vec<_>, _>>()
        .expect("perf smoke grid must evaluate cleanly")
}

fn main() {
    let arch = Architecture::Pdp11;
    let refs_per_trace = refs_per_trace();
    let traces = materialize(&WorkloadSpec::set_for(arch), refs_per_trace);
    let configs: Vec<CacheConfig> = [64u64, 256, 1024]
        .into_iter()
        .flat_map(|net| {
            table1_pairs(net, arch.word_size())
                .into_iter()
                .map(move |(b, s)| standard_config(arch, net, b, s))
        })
        .collect();

    let t0 = Instant::now();
    let direct = points(evaluate_results_with(&configs, &traces, 0, evaluate_point));
    let direct_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let sliced = points(evaluate_results_sliced(&configs, &traces, 0));
    let sliced_s = t1.elapsed().as_secs_f64();

    for (d, s) in direct.iter().zip(&sliced) {
        assert_eq!(d.config, s.config);
        assert!(
            d.miss_ratio == s.miss_ratio && d.traffic_ratio == s.traffic_ratio,
            "sliced sweep diverged from direct at {}: timing would be meaningless",
            d.config
        );
    }

    let total_refs = (configs.len() * traces.len() * refs_per_trace) as f64;
    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"grid\": \"pdp11 Table 7 nets 64/256/1024\",\n  \
         \"points\": {},\n  \"traces\": {},\n  \"refs_per_trace\": {},\n  \
         \"direct_wall_s\": {:.3},\n  \"sliced_wall_s\": {:.3},\n  \"speedup\": {:.2},\n  \
         \"effective_refs_per_sec\": {:.0}\n}}\n",
        configs.len(),
        traces.len(),
        refs_per_trace,
        direct_s,
        sliced_s,
        direct_s / sliced_s,
        total_refs / sliced_s,
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    print!("{json}");
    eprintln!(
        "perf smoke: direct {direct_s:.3}s, sliced {sliced_s:.3}s ({:.2}x)",
        direct_s / sliced_s
    );
}
