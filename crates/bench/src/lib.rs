#![warn(missing_docs)]

//! # occache-bench — benchmark support
//!
//! This crate exists to host the Criterion benches (`benches/`):
//!
//! * `simulator` — per-access cost of the sub-block cache across
//!   configurations, replacement policies and fetch policies, plus the
//!   stack-distance analyzer,
//! * `generator` — synthetic trace generation throughput per architecture,
//! * `artifacts` — end-to-end regeneration cost of every paper artifact
//!   (Tables 6–8, Figures 1–9, the RISC II curve) at a reduced trace
//!   length,
//! * `multisim` — the one-pass all-sizes LRU engine against N
//!   independent direct simulations of the same slice (the speedup that
//!   motivates the sweep planner).
//!
//! Besides the benches, the `perf_smoke` binary regenerates a
//! Table-7-style grid through both sweep paths, asserts the results are
//! bit-identical, and writes the wall-clock comparison to
//! `BENCH_sweep.json`; `ci.sh` runs it as its final gate.
//!
//! The library itself only provides small shared helpers.

use occache_trace::MemRef;
use occache_workloads::{Architecture, WorkloadSpec};

/// A canonical benchmark trace: the architecture's first workload,
/// truncated to `len` references.
pub fn bench_trace(arch: Architecture, len: usize) -> Vec<MemRef> {
    let specs = WorkloadSpec::set_for(arch);
    specs[0].generator(0).take(len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_trace_has_requested_length() {
        assert_eq!(bench_trace(Architecture::Pdp11, 1234).len(), 1234);
    }
}
