//! The supervised executor: per-point wall-clock deadlines, bounded
//! retries with capped backoff, deterministic fault injection, and the
//! interrupt-aware worker pool over planned sweep units. This is the
//! *static grid* job source — batch sweeps hand it a config list and
//! stream results out through a hook; the serving layer's live-queue
//! source ([`crate::queue`]) coalesces submissions into grids and runs
//! them through the same pool.
//!
//! Under a deadline, each design point (or engine slice) runs on a named
//! watchdog thread and the supervisor waits with a timeout; a point that
//! overruns is abandoned (the thread is leaked — Rust cannot kill a
//! thread — and counted in [`SuperviseStats::abandoned_threads`]) and
//! surfaces as [`PointFault::Timeout`](crate::eval::PointFault::Timeout)
//! instead of wedging the whole run. Panicking points get `retries`
//! further attempts separated by an exponential backoff capped at
//! `backoff_cap`; timeouts are never retried, because a hung point will
//! hang again and every extra attempt leaks another thread.
//!
//! The policy is configured from the environment in production bins:
//!
//! * `OCCACHE_POINT_TIMEOUT` — per-point deadline in seconds (float).
//!   `0`, `off` or empty disables the deadline; unset means the
//!   [`DEFAULT_POINT_TIMEOUT`] of 300 s.
//! * `OCCACHE_POINT_RETRIES` — extra attempts after a panic (default 1).
//! * `OCCACHE_FAULT_POINT` — fault injection for tests and CI smoke
//!   runs: `hang:B,S[:secs]` or `panic-once:B,S` (see [`FaultPlan`]).

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use occache_core::CacheConfig;

use crate::config::parse_timeout;
use crate::eval::{
    evaluate_point, evaluate_results_with, evaluate_slice, panic_message, plan_units_disabling,
    DesignPoint, PointError, SweepUnit, Trace,
};
use crate::journal::JournalHealth;

/// The deadline applied when `OCCACHE_POINT_TIMEOUT` is unset: generous
/// enough for a 1M-reference point on slow hardware, small enough that
/// an unattended overnight sweep cannot wedge forever.
pub const DEFAULT_POINT_TIMEOUT: Duration = Duration::from_secs(300);

/// How a deliberately injected fault misbehaves (see [`FaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep this long inside the evaluation, simulating a hung point.
    Hang(Duration),
    /// Panic exactly once per plan, simulating a transient failure that
    /// succeeds on retry.
    PanicOnce,
}

/// Deterministic fault injection for the supervisor, targeted at one
/// `(block, sub-block)` cell so every other point runs normally. This
/// is the supervisor-level sibling of the `FaultyReader` used for trace
/// I/O faults: tests and the CI smoke run use it to prove the
/// timeout → retry → quarantine transitions on real sweeps.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// `(block_size, sub_block_size)` of the targeted cell, or `None`
    /// for a plan that never fires on a cell.
    target: Option<(u64, u64)>,
    /// What the fault does when tripped.
    kind: Option<FaultKind>,
    /// Shared once-latch for [`FaultKind::PanicOnce`].
    fired: Arc<AtomicBool>,
    /// Count-based injection: panic every `period`-th evaluation,
    /// regardless of cell. Deterministic in the number of evaluations,
    /// so a retried attempt advances the counter and succeeds — the
    /// serving layer's `panic-worker:K` chaos mode.
    every: Option<u64>,
    /// Shared evaluation counter for [`FaultPlan::panic_every`].
    evaluations: Arc<AtomicU64>,
}

impl FaultPlan {
    fn cell(target: Option<(u64, u64)>, kind: Option<FaultKind>) -> Self {
        FaultPlan {
            target,
            kind,
            fired: Arc::new(AtomicBool::new(false)),
            every: None,
            evaluations: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A plan that never fires (the production default).
    pub fn none() -> Self {
        FaultPlan::cell(None, None)
    }

    /// A plan that hangs the `(block, sub)` cell for `delay` every time
    /// it is evaluated.
    pub fn hang(block: u64, sub: u64, delay: Duration) -> Self {
        FaultPlan::cell(Some((block, sub)), Some(FaultKind::Hang(delay)))
    }

    /// A plan that panics the first evaluation of the `(block, sub)`
    /// cell and lets every later attempt succeed.
    pub fn panic_once(block: u64, sub: u64) -> Self {
        FaultPlan::cell(Some((block, sub)), Some(FaultKind::PanicOnce))
    }

    /// A plan that panics every `period`-th evaluation (any cell),
    /// counting deterministically across clones. A retry is a fresh
    /// evaluation, so with a supervisor retry budget the point recovers
    /// — this is the scheduler-layer arm of `OCCACHE_SERVE_FAULT`.
    pub fn panic_every(period: u64) -> Self {
        let mut plan = FaultPlan::none();
        plan.every = Some(period.max(1));
        plan
    }

    /// Parses the `OCCACHE_FAULT_POINT` syntax: `hang:B,S` (30 s
    /// default), `hang:B,S:SECS`, or `panic-once:B,S`.
    ///
    /// # Errors
    ///
    /// Returns a message describing the malformed part of the spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        let (kind, rest) = spec
            .split_once(':')
            .ok_or_else(|| format!("fault spec `{spec}` is missing `:B,S` (e.g. hang:8,4)"))?;
        let (cell, extra) = match rest.split_once(':') {
            Some((cell, extra)) => (cell, Some(extra)),
            None => (rest, None),
        };
        let (b, s) = cell
            .split_once(',')
            .ok_or_else(|| format!("fault target `{cell}` is not of the form B,S"))?;
        let block: u64 = b
            .trim()
            .parse()
            .map_err(|_| format!("fault block size `{b}` is not a number"))?;
        let sub: u64 = s
            .trim()
            .parse()
            .map_err(|_| format!("fault sub-block size `{s}` is not a number"))?;
        match kind {
            "hang" => {
                let secs = match extra {
                    Some(raw) => raw
                        .trim()
                        .parse::<f64>()
                        .ok()
                        .filter(|v| v.is_finite() && *v >= 0.0)
                        .ok_or_else(|| format!("hang duration `{raw}` is not a number"))?,
                    None => 30.0,
                };
                Ok(FaultPlan::hang(block, sub, Duration::from_secs_f64(secs)))
            }
            "panic-once" => {
                if extra.is_some() {
                    return Err(format!("panic-once takes no duration: `{spec}`"));
                }
                Ok(FaultPlan::panic_once(block, sub))
            }
            other => Err(format!(
                "unknown fault kind `{other}` (expected hang or panic-once)"
            )),
        }
    }

    /// Fires the fault if `config` is the targeted cell (or the
    /// evaluation counter hits a [`FaultPlan::panic_every`] period).
    /// Called inside the evaluation thread, so a hang is
    /// indistinguishable from a genuinely wedged simulation.
    pub fn trip(&self, config: &CacheConfig) {
        if let Some(period) = self.every {
            let n = self.evaluations.fetch_add(1, Ordering::SeqCst) + 1;
            if n.is_multiple_of(period) {
                panic!("injected worker panic (every {period} evaluations, at {n})");
            }
        }
        let Some((block, sub)) = self.target else {
            return;
        };
        if config.block_size() != block || config.sub_block_size() != sub {
            return;
        }
        match self.kind {
            Some(FaultKind::Hang(delay)) => thread::sleep(delay),
            Some(FaultKind::PanicOnce) if !self.fired.swap(true, Ordering::SeqCst) => {
                panic!("injected transient point fault at ({block},{sub})");
            }
            _ => {}
        }
    }
}

/// How the supervisor treats each design point: deadline, retry budget,
/// backoff shape, and any injected fault.
#[derive(Debug, Clone)]
pub struct SupervisorPolicy {
    /// Wall-clock deadline per point (and per engine slice). `None`
    /// disables the watchdog entirely — evaluation runs inline.
    pub timeout: Option<Duration>,
    /// Extra attempts after a panicking evaluation. Timeouts are never
    /// retried.
    pub retries: u32,
    /// Sleep before the first retry; doubled per attempt.
    pub backoff: Duration,
    /// Upper bound on the doubled backoff.
    pub backoff_cap: Duration,
    /// Fault injection (production plans never fire).
    pub fault: FaultPlan,
}

impl SupervisorPolicy {
    /// No deadline, no retries, no faults: the policy behind the plain
    /// sliced sweep and the in-process test suites.
    pub fn disabled() -> Self {
        SupervisorPolicy {
            timeout: None,
            retries: 0,
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            fault: FaultPlan::none(),
        }
    }

    /// The production default when no environment overrides are set:
    /// [`DEFAULT_POINT_TIMEOUT`], one retry, 100 ms backoff capped at
    /// 5 s, no faults.
    pub fn production() -> Self {
        SupervisorPolicy {
            timeout: Some(DEFAULT_POINT_TIMEOUT),
            retries: 1,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
            fault: FaultPlan::none(),
        }
    }

    /// Builds the policy from `OCCACHE_POINT_TIMEOUT`,
    /// `OCCACHE_POINT_RETRIES` and `OCCACHE_FAULT_POINT`, rejecting
    /// malformed values so bins can refuse to start instead of running
    /// a long sweep under a misread policy.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed variable.
    pub fn try_from_env() -> Result<Self, String> {
        let mut policy = SupervisorPolicy::production();
        if let Ok(raw) = std::env::var("OCCACHE_POINT_TIMEOUT") {
            policy.timeout = parse_timeout(&raw)?;
        }
        if let Ok(raw) = std::env::var("OCCACHE_POINT_RETRIES") {
            policy.retries = raw
                .trim()
                .parse()
                .map_err(|_| format!("OCCACHE_POINT_RETRIES `{raw}` is not a whole number"))?;
        }
        if let Ok(raw) = std::env::var("OCCACHE_FAULT_POINT") {
            if !raw.trim().is_empty() {
                policy.fault = FaultPlan::parse(&raw)?;
            }
        }
        Ok(policy)
    }

    /// Like [`SupervisorPolicy::try_from_env`], but a malformed setting
    /// degrades to the production default with a warning instead of
    /// failing — used mid-run where aborting would waste completed
    /// points.
    pub fn from_env_lenient() -> Self {
        SupervisorPolicy::try_from_env().unwrap_or_else(|e| {
            eprintln!("warning: ignoring invalid supervisor settings: {e}");
            SupervisorPolicy::production()
        })
    }
}

/// What the supervisor did beyond plain evaluation: retry attempts,
/// watchdog threads abandoned at their deadline, and how many points
/// each execution path computed. Feeds RUN_REPORT.json (and through it
/// the progress feed and the `occache-top` SWEEP pane).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperviseStats {
    /// Evaluation attempts made after a first failure.
    pub retries: usize,
    /// Watchdog threads leaked because their point overran the deadline.
    pub abandoned_threads: usize,
    /// Points computed per one-pass engine, indexed by
    /// [`EngineKind::index`](occache_core::EngineKind::index).
    pub engine_points: [usize; 3],
    /// Points computed on the direct simulator — planner fallbacks,
    /// engines disabled via `OCCACHE_NO_MULTISIM`, and per-member
    /// containment re-runs after a slice failure.
    pub direct_points: usize,
}

impl SuperviseStats {
    /// Accumulates another worker's stats into this one.
    pub fn merge(&mut self, other: SuperviseStats) {
        self.retries += other.retries;
        self.abandoned_threads += other.abandoned_threads;
        for (mine, theirs) in self.engine_points.iter_mut().zip(other.engine_points) {
            *mine += theirs;
        }
        self.direct_points += other.direct_points;
    }

    /// Points computed per one-pass engine, as `(kind, count)` pairs in
    /// [`EngineKind::ALL`](occache_core::EngineKind::ALL) order.
    pub fn engine_point_counts(&self) -> [(occache_core::EngineKind, usize); 3] {
        let mut out = [(occache_core::EngineKind::Lru, 0); 3];
        for (slot, kind) in out.iter_mut().zip(occache_core::EngineKind::ALL) {
            *slot = (kind, self.engine_points[kind.index()]);
        }
        out
    }
}

/// The outcome of one deadline-bounded evaluation.
enum Deadline<T> {
    /// The closure ran to completion (possibly panicking) in time.
    Finished(thread::Result<T>),
    /// The deadline elapsed; the watchdog thread was abandoned.
    Elapsed,
}

/// Runs `f` under an optional wall-clock deadline. With no deadline the
/// closure runs inline under `catch_unwind`. With one, it runs on a
/// named watchdog thread and the caller waits at most `timeout`; an
/// overrunning thread is leaked (Rust offers no way to kill it) and the
/// caller moves on.
fn run_with_deadline<T: Send + 'static>(
    timeout: Option<Duration>,
    f: impl FnOnce() -> T + Send + 'static,
) -> Deadline<T> {
    let Some(limit) = timeout else {
        return Deadline::Finished(panic::catch_unwind(AssertUnwindSafe(f)));
    };
    let (tx, rx) = mpsc::sync_channel::<thread::Result<T>>(1);
    let spawned = thread::Builder::new()
        .name("occache-point".to_string())
        .spawn(move || {
            let _ = tx.send(panic::catch_unwind(AssertUnwindSafe(f)));
        });
    let handle = match spawned {
        Ok(handle) => handle,
        // Thread spawn fails only under resource exhaustion; surface it
        // as a point failure rather than crashing the sweep.
        Err(e) => {
            return Deadline::Finished(Err(Box::new(format!(
                "could not spawn the point watchdog thread: {e}"
            ))))
        }
    };
    match rx.recv_timeout(limit) {
        Ok(result) => {
            // The sender has already produced a value; reap the thread.
            let _ = handle.join();
            Deadline::Finished(result)
        }
        Err(mpsc::RecvTimeoutError::Timeout) => Deadline::Elapsed,
        // The sender dropped without sending: the thread died outside
        // catch_unwind. Join it to recover the payload.
        Err(mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(payload) => Deadline::Finished(Err(payload)),
            Ok(()) => Deadline::Finished(Err(Box::new(
                "point watchdog thread exited without a result".to_string(),
            ))),
        },
    }
}

/// Evaluates one design point under the policy: deadline per attempt,
/// bounded retries with doubling backoff after panics, no retry after a
/// timeout (a hung point would hang again and leak another thread).
fn supervise_point(
    policy: &SupervisorPolicy,
    config: CacheConfig,
    traces: &[Trace],
    warmup: usize,
    stats: &mut SuperviseStats,
) -> Result<DesignPoint, PointError> {
    let mut backoff = policy.backoff;
    let mut attempt: u32 = 0;
    loop {
        let fault = policy.fault.clone();
        let owned = traces.to_vec();
        let run = run_with_deadline(policy.timeout, move || {
            fault.trip(&config);
            evaluate_point(config, &owned, warmup)
        });
        match run {
            Deadline::Finished(Ok(point)) => return Ok(point),
            Deadline::Finished(Err(payload)) => {
                let message = panic_message(payload);
                if attempt < policy.retries {
                    attempt += 1;
                    stats.retries += 1;
                    thread::sleep(backoff);
                    backoff = backoff
                        .checked_mul(2)
                        .unwrap_or(policy.backoff_cap)
                        .min(policy.backoff_cap);
                    continue;
                }
                return Err(PointError::panicked(
                    config,
                    format!("{message} (after {} attempt(s))", attempt + 1),
                ));
            }
            Deadline::Elapsed => {
                stats.abandoned_threads += 1;
                let limit = policy.timeout.unwrap_or_default();
                return Err(PointError::timed_out(config, limit));
            }
        }
    }
}

/// Supervised fault-isolated parallel sweep: the engine-sliced worker
/// pool of the plain sweep, with every unit run under the policy's
/// deadline and retry budget. Returns one result per config in input
/// order, plus the supervision stats.
///
/// An engine slice that panics or overruns its deadline does not fail
/// its sibling configs: each member is re-run alone on the direct
/// simulator under its own deadline, so only the genuinely broken or
/// hung cell fails and fault attribution stays per-point.
pub fn evaluate_results_supervised(
    policy: &SupervisorPolicy,
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
) -> (Vec<Result<DesignPoint, PointError>>, SuperviseStats) {
    evaluate_results_supervised_with(policy, configs, traces, warmup, None, |_, _| {})
}

/// [`evaluate_results_supervised`] with the pool knobs exposed: an
/// explicit worker-count override (`None` honours `OCCACHE_SLICE_THREADS`,
/// then `OCCACHE_JOBS` / hardware parallelism, via
/// [`crate::eval::slice_workers`]) and an
/// `on_point` hook called exactly once per config — from worker threads,
/// as each result lands — which the checkpoint layer uses to stream
/// journal appends to its single writer thread and the serving layer
/// uses to publish results as they complete.
///
/// The pool is interrupt-aware: once [`crate::interrupt::requested`]
/// turns true, workers finish their current unit and stop claiming new
/// ones; unclaimed configs come back as
/// [`PointFault::Interrupted`](crate::eval::PointFault::Interrupted)
/// failures (for which `on_point` is *not* called — nothing was
/// evaluated).
pub fn evaluate_results_supervised_with<H>(
    policy: &SupervisorPolicy,
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
    workers: Option<usize>,
    on_point: H,
) -> (Vec<Result<DesignPoint, PointError>>, SuperviseStats)
where
    H: Fn(usize, &Result<DesignPoint, PointError>) + Sync,
{
    // Per-policy escape hatch: disabled engines' configs become direct
    // units; the planner already routes engine-inexpressible configs
    // there unconditionally.
    let units = plan_units_disabling(configs, crate::config::multisim_disabled());
    let workers = workers
        .unwrap_or_else(|| crate::eval::slice_workers(units.len()))
        .min(units.len().max(1))
        .max(1);
    let mut slots: Vec<Option<Result<DesignPoint, PointError>>> = vec![None; configs.len()];
    let mut stats = SuperviseStats::default();
    let mut died: Vec<String> = Vec::new();
    let next = AtomicUsize::new(0);
    let (units, next, on_point) = (&units, &next, &on_point);
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            handles.push(scope.spawn(move || {
                let mut done: Vec<(usize, Result<DesignPoint, PointError>)> = Vec::new();
                let emit = |done: &mut Vec<(usize, Result<DesignPoint, PointError>)>,
                            i: usize,
                            r: Result<DesignPoint, PointError>| {
                    on_point(i, &r);
                    done.push((i, r));
                };
                let mut local = SuperviseStats::default();
                loop {
                    if crate::interrupt::requested() {
                        break;
                    }
                    let u = next.fetch_add(1, Ordering::Relaxed);
                    let Some(unit) = units.get(u) else { break };
                    match unit {
                        SweepUnit::Direct(i) => {
                            let r =
                                supervise_point(policy, configs[*i], traces, warmup, &mut local);
                            local.direct_points += 1;
                            emit(&mut done, *i, r);
                        }
                        SweepUnit::Engine { kind, members } => {
                            let slice: Vec<CacheConfig> =
                                members.iter().map(|&i| configs[i]).collect();
                            let owned = traces.to_vec();
                            let fault = policy.fault.clone();
                            let run = run_with_deadline(policy.timeout, move || {
                                for config in &slice {
                                    fault.trip(config);
                                }
                                evaluate_slice(&slice, &owned, warmup)
                            });
                            match run {
                                Deadline::Finished(Ok(points)) => {
                                    local.engine_points[kind.index()] += members.len();
                                    for (&i, p) in members.iter().zip(points) {
                                        emit(&mut done, i, Ok(p));
                                    }
                                }
                                // A slice panic or overrun must not take
                                // siblings down with it: re-run each
                                // member alone on the direct simulator
                                // under its own deadline, so only the
                                // broken or hung cell fails.
                                Deadline::Finished(Err(_)) | Deadline::Elapsed => {
                                    if matches!(run, Deadline::Elapsed) {
                                        local.abandoned_threads += 1;
                                    }
                                    local.retries += 1;
                                    for &i in members {
                                        let r = supervise_point(
                                            policy, configs[i], traces, warmup, &mut local,
                                        );
                                        local.direct_points += 1;
                                        emit(&mut done, i, r);
                                    }
                                }
                            }
                        }
                    }
                }
                (done, local)
            }));
        }
        for h in handles {
            match h.join() {
                Ok((done, local)) => {
                    for (i, r) in done {
                        slots[i] = Some(r);
                    }
                    stats.merge(local);
                }
                // With per-unit containment a worker should never die,
                // but if one does, its claimed units surface below as
                // failures rather than poisoning the whole sweep.
                Err(payload) => died.push(panic_message(payload)),
            }
        }
    });
    let interrupted = crate::interrupt::requested();
    let death = died.first().map(String::as_str).unwrap_or("unknown cause");
    let results = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                if interrupted && died.is_empty() {
                    Err(PointError::interrupted(configs[i]))
                } else {
                    Err(PointError::worker_loss(
                        configs[i],
                        format!("sweep worker thread died outside point isolation: {death}"),
                    ))
                }
            })
        })
        .collect();
    (results, stats)
}

/// Fault-isolated parallel sweep that shares trace passes across
/// one-pass-compatible slices, returning one result per config in input
/// order.
///
/// The grid is planned into [`SweepUnit`]s and the units drained from a
/// shared queue by the supervised worker pool (see
/// [`evaluate_results_supervised`], of which this is the no-deadline,
/// no-retry special case). A panic inside an engine slice does not fail
/// its sibling configs: each member is retried alone on the direct
/// simulator, so fault isolation stays per-point exactly as in
/// [`crate::eval::evaluate_results_with`].
pub fn evaluate_results_sliced(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
) -> Vec<Result<DesignPoint, PointError>> {
    let policy = SupervisorPolicy::disabled();
    evaluate_results_supervised(&policy, configs, traces, warmup).0
}

/// Adapts a per-point evaluation function to the batch shape the
/// checkpointed sweeps consume, keeping per-point fault isolation.
/// Production sweeps pass [`evaluate_results_sliced`] instead; tests use
/// this to inject point-level faults into batch APIs.
pub fn batch_of<F>(
    eval: F,
) -> impl Fn(&[CacheConfig], &[Trace], usize) -> Vec<Result<DesignPoint, PointError>> + Sync
where
    F: Fn(CacheConfig, &[Trace], usize) -> DesignPoint + Sync,
{
    move |configs: &[CacheConfig], traces: &[Trace], warmup: usize| {
        evaluate_results_with(configs, traces, warmup, &eval)
    }
}

/// The outcome of a fault-isolated (and possibly resumed) sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Successfully evaluated points, in the order of the input configs.
    pub points: Vec<DesignPoint>,
    /// Points whose evaluation failed, with the failing config named.
    pub failures: Vec<PointError>,
    /// How many points were restored from a checkpoint journal rather than
    /// re-simulated (always 0 for non-resumable sweeps).
    pub resumed: usize,
    /// Retried attempts the supervisor made after transient failures.
    pub retries: usize,
    /// Checkpoint-journal health observed while resuming.
    pub journal: JournalHealth,
}

impl SweepOutcome {
    /// True when every input config produced a point.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// How many failures were deadline overruns.
    pub fn timed_out(&self) -> usize {
        self.fault_count(crate::eval::PointFault::Timeout)
    }

    /// How many points the journal quarantined.
    pub fn quarantined(&self) -> usize {
        self.fault_count(crate::eval::PointFault::Quarantined)
    }

    /// How many points produced non-finite metrics.
    pub fn non_finite(&self) -> usize {
        self.fault_count(crate::eval::PointFault::NonFinite)
    }

    fn fault_count(&self, fault: crate::eval::PointFault) -> usize {
        self.failures.iter().filter(|f| f.fault == fault).count()
    }

    /// A short report block naming each failed cell, or `None` when the
    /// sweep is complete. Artifact reports append this so partial results
    /// are never mistaken for full grids.
    pub fn failure_note(&self) -> Option<String> {
        failure_note(&self.failures)
    }
}

/// Renders a failed-cells block for a report, or `None` when `failures`
/// is empty. See [`SweepOutcome::failure_note`].
pub fn failure_note(failures: &[PointError]) -> Option<String> {
    if failures.is_empty() {
        return None;
    }
    let mut note = format!(
        "WARNING: {} design point(s) FAILED and are missing above:\n",
        failures.len()
    );
    for f in failures {
        use std::fmt::Write as _;
        let _ = writeln!(note, "  FAILED {f}");
    }
    Some(note)
}

/// Fault-isolated parallel sweep with a custom evaluation function.
///
/// Each point runs under `catch_unwind`: a panicking point is reported in
/// [`SweepOutcome::failures`] (named by its config) and the rest of the
/// grid still completes. `eval` is a parameter so tests can inject faults;
/// production callers use [`evaluate_points_isolated`].
pub fn evaluate_points_isolated_with<F>(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
    eval: F,
) -> SweepOutcome
where
    F: Fn(CacheConfig, &[Trace], usize) -> DesignPoint + Sync,
{
    let mut outcome = SweepOutcome::default();
    for result in evaluate_results_with(configs, traces, warmup, eval) {
        match result {
            Ok(p) => outcome.points.push(p),
            Err(e) => outcome.failures.push(e),
        }
    }
    outcome
}

/// Fault-isolated parallel sweep using the one-pass engine where the grid
/// allows it and [`evaluate_point`] elsewhere (see
/// [`evaluate_results_sliced`]).
pub fn evaluate_points_isolated(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
) -> SweepOutcome {
    let mut outcome = SweepOutcome::default();
    for result in evaluate_results_sliced(configs, traces, warmup) {
        match result {
            Ok(p) => outcome.points.push(p),
            Err(e) => outcome.failures.push(e),
        }
    }
    outcome
}

/// Evaluates many configurations, spreading work across threads.
///
/// # Panics
///
/// Panics if any point's evaluation panics, naming the failing
/// configuration. Use [`evaluate_points_isolated`] to get partial results
/// instead.
pub fn evaluate_points(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
) -> Vec<DesignPoint> {
    let outcome = evaluate_points_isolated(configs, traces, warmup);
    if let Some(first) = outcome.failures.first() {
        panic!(
            "sweep failed at {} of {} design point(s); first failure: {first}",
            outcome.failures.len(),
            configs.len()
        );
    }
    outcome.points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PointFault;
    use occache_workloads::WorkloadSpec;

    // Local stand-ins for the workload helpers that live above this
    // crate (`occache_experiments::sweep::{materialize, table1_pairs,
    // standard_config}`): a PDP-11 grid at net 256, word 2.
    fn small_grid() -> (Vec<CacheConfig>, Vec<Trace>) {
        let spec = WorkloadSpec::pdp11_ed();
        let traces = vec![Trace::new(spec.name(), spec.generator(0).take(1_000))];
        let mut configs = Vec::new();
        let mut block = 64u64;
        while block >= 2 {
            let mut sub = block.min(32);
            while sub >= 2 {
                configs.push(
                    CacheConfig::builder()
                        .net_size(256)
                        .block_size(block)
                        .sub_block_size(sub)
                        .word_size(2)
                        .build()
                        .expect("Table 1 geometry is valid"),
                );
                sub /= 2;
            }
            block /= 2;
        }
        (configs, traces)
    }

    #[test]
    fn fault_plan_parsing_round_trips_the_cli_syntax() {
        let hang = FaultPlan::parse("hang:8,4:0.25").unwrap();
        assert_eq!(hang.target, Some((8, 4)));
        assert_eq!(hang.kind, Some(FaultKind::Hang(Duration::from_millis(250))));
        let default_hang = FaultPlan::parse("hang:16,8").unwrap();
        assert_eq!(
            default_hang.kind,
            Some(FaultKind::Hang(Duration::from_secs(30)))
        );
        let panic_once = FaultPlan::parse("panic-once:8,4").unwrap();
        assert_eq!(panic_once.kind, Some(FaultKind::PanicOnce));
        assert!(FaultPlan::parse("hang").is_err());
        assert!(FaultPlan::parse("hang:8").is_err());
        assert!(FaultPlan::parse("hang:a,b").is_err());
        assert!(FaultPlan::parse("panic-once:8,4:1").is_err());
        assert!(FaultPlan::parse("explode:8,4").is_err());
    }

    #[test]
    fn disabled_policy_matches_the_plain_sweep() {
        let (configs, traces) = small_grid();
        let policy = SupervisorPolicy::disabled();
        let (supervised, stats) = evaluate_results_supervised(&policy, &configs, &traces, 0);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.abandoned_threads, 0);
        // The whole LRU grid rides the LRU engine; nothing is direct.
        assert_eq!(
            stats.engine_points[occache_core::EngineKind::Lru.index()],
            configs.len()
        );
        assert_eq!(stats.direct_points, 0);
        let plain = evaluate_results_with(&configs, &traces, 0, evaluate_point);
        for (s, p) in supervised.iter().zip(&plain) {
            let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
            assert_eq!(s.config, p.config);
            assert_eq!(s.miss_ratio.to_bits(), p.miss_ratio.to_bits());
            assert_eq!(s.traffic_ratio.to_bits(), p.traffic_ratio.to_bits());
        }
    }

    #[test]
    fn hung_point_times_out_and_siblings_complete() {
        let (configs, traces) = small_grid();
        let mut policy = SupervisorPolicy::disabled();
        policy.timeout = Some(Duration::from_millis(200));
        policy.fault = FaultPlan::hang(8, 4, Duration::from_secs(60));
        let (results, stats) = evaluate_results_supervised(&policy, &configs, &traces, 0);
        let mut timeouts = 0;
        for (config, result) in configs.iter().zip(&results) {
            let hung = config.block_size() == 8 && config.sub_block_size() == 4;
            match result {
                Ok(point) => assert!(!hung, "hung cell {:?} completed", point.config),
                Err(e) => {
                    assert!(hung, "unexpected failure: {e}");
                    assert_eq!(e.fault, PointFault::Timeout);
                    assert!(e.message.contains("deadline"), "{e}");
                    timeouts += 1;
                }
            }
        }
        assert_eq!(timeouts, 1);
        assert!(stats.abandoned_threads >= 1);
    }

    #[test]
    fn transient_panic_succeeds_on_retry() {
        let (configs, traces) = small_grid();
        let mut policy = SupervisorPolicy::disabled();
        policy.retries = 1;
        policy.backoff = Duration::from_millis(1);
        policy.fault = FaultPlan::panic_once(8, 4);
        let (results, stats) = evaluate_results_supervised(&policy, &configs, &traces, 0);
        assert!(results.iter().all(Result::is_ok), "retry must recover");
        assert!(stats.retries >= 1);
    }

    #[test]
    fn exhausted_retries_surface_the_panic() {
        let (configs, traces) = small_grid();
        let mut policy = SupervisorPolicy::disabled();
        policy.fault = FaultPlan::hang(8, 4, Duration::ZERO);
        // A zero-length hang never fails: the sweep completes.
        let (results, _) = evaluate_results_supervised(&policy, &configs, &traces, 0);
        assert!(results.iter().all(Result::is_ok));
    }
}
