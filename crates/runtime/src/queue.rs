//! The live-queue job source: a bounded queue of design-point jobs, a
//! fixed worker pool draining it, and batch coalescing. The serving
//! layer's scheduler — usable as a library independent of HTTP.
//!
//! Submitters enqueue [`Job`]s and receive results over each job's own
//! channel; when the queue is full, [`Scheduler::submit`] refuses with
//! [`SubmitError::Busy`] so the caller can apply backpressure (the HTTP
//! layer turns that into a 429 with `Retry-After`). A worker that claims
//! a job first *coalesces*: it sweeps the queue for other jobs over the
//! same trace set and warm-up and evaluates them as one grid, which lets
//! the multisim engine share trace passes across compatible points
//! exactly as the batch planner ([`crate::eval::plan_units`]) slices
//! static grids. Every point runs under the supervisor policy
//! ([`crate::executor`]), so a wedged simulation hits its deadline and
//! returns a structured failure instead of hanging the connection.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use occache_core::CacheConfig;

use crate::eval::{DesignPoint, PointError, Trace};
use crate::executor::{evaluate_results_supervised_with, SupervisorPolicy};

/// A materialised trace set plus its content fingerprint, shared by
/// reference between the request layer, the cache keys, and the workers.
#[derive(Debug)]
pub struct TraceSet {
    /// The traces, in set order.
    pub traces: Vec<Trace>,
    /// [`crate::keys::trace_fingerprint`] of `traces`.
    pub fingerprint: u64,
}

/// The admission lane a job belongs to. Under load the queue sheds
/// [`Priority::Bulk`] work (full grids) first and keeps accepting
/// [`Priority::Interactive`] work (single-point lookups) until it is
/// completely full, so cheap cache-adjacent traffic degrades last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// A single-point lookup: admitted until the queue is full.
    #[default]
    Interactive,
    /// A grid member: admitted only while the queue has bulk headroom
    /// (half the capacity), shed first under pressure.
    Bulk,
}

/// One design point awaiting evaluation.
#[derive(Debug)]
pub struct Job {
    /// The configuration to evaluate.
    pub config: CacheConfig,
    /// The trace set to run over.
    pub traces: Arc<TraceSet>,
    /// Warm-up prefix length.
    pub warmup: usize,
    /// The content-addressed point key (for the submitter's bookkeeping;
    /// echoed back in the result).
    pub key: u64,
    /// The admission lane (see [`Priority`]).
    pub priority: Priority,
    /// Where the result goes. A dropped receiver is fine — the send is
    /// best-effort, the computation still happened.
    pub reply: Sender<JobResult>,
}

/// A finished job.
#[derive(Debug)]
pub struct JobResult {
    /// The job's point key, echoed.
    pub key: u64,
    /// The evaluated point or its structured failure.
    pub result: Result<DesignPoint, PointError>,
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; retry after a drain.
    Busy,
    /// The scheduler is shutting down.
    Closed,
}

#[derive(Debug)]
struct State {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    open: AtomicBool,
    capacity: usize,
    max_batch: usize,
    policy: SupervisorPolicy,
    busy: Vec<WorkerGauge>,
    /// Completed evaluations, for the service-rate estimate.
    points_done: AtomicU64,
    /// Cumulative evaluation time across all completed points, µs.
    eval_micros: AtomicU64,
}

impl State {
    /// A coherent `(points_done, eval_micros)` pair. The two counters
    /// are separate atomics, so one load of each can tear against a
    /// completing worker — under drain that yields an average computed
    /// from a fresh count over a stale time sum, which is exactly the
    /// 0 s / 60 s-clamped `Retry-After` outlier. Workers publish micros
    /// before count (Release); re-reading the count (Acquire) and
    /// retrying until it is unchanged therefore bounds the pair: the
    /// micros read lies between two identical counts, so it includes
    /// every completed point and no partial one. Bounded retries — under
    /// sustained churn the last pair is still ordered (micros ≥ the
    /// matching sum for `done`), which only over-estimates the average,
    /// never zeroes it.
    fn rate_snapshot(&self) -> (u64, u64) {
        let mut done = self.points_done.load(Ordering::Acquire);
        for _ in 0..8 {
            let micros = self.eval_micros.load(Ordering::Acquire);
            let done_after = self.points_done.load(Ordering::Acquire);
            if done == done_after {
                return (done, micros);
            }
            done = done_after;
        }
        (done, self.eval_micros.load(Ordering::Acquire))
    }
}

#[derive(Debug, Default)]
struct WorkerGauge {
    busy_now: AtomicBool,
    busy_micros: AtomicU64,
}

/// The worker pool. Dropping without [`Scheduler::shutdown`] detaches
/// the workers (they exit once the queue closes at process end); call
/// `shutdown` for a deterministic drain.
#[derive(Debug)]
pub struct Scheduler {
    state: Arc<State>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts `workers` threads over a queue of at most `capacity`
    /// waiting jobs, coalescing up to `max_batch` compatible jobs per
    /// evaluation (all minimums 1).
    pub fn new(
        workers: usize,
        capacity: usize,
        max_batch: usize,
        policy: SupervisorPolicy,
    ) -> Scheduler {
        let workers = workers.max(1);
        let state = Arc::new(State {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            open: AtomicBool::new(true),
            capacity: capacity.max(1),
            max_batch: max_batch.max(1),
            policy,
            busy: (0..workers).map(|_| WorkerGauge::default()).collect(),
            points_done: AtomicU64::new(0),
            eval_micros: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("occache-sched-{i}"))
                    .spawn(move || worker_loop(&state, i))
                    .expect("could not spawn a scheduler worker")
            })
            .collect();
        Scheduler {
            state,
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues a job, applying lane-aware admission control: a
    /// [`Priority::Bulk`] job is refused once the queue passes its bulk
    /// headroom (half of capacity, minimum 1), an interactive job only
    /// when the queue is completely full — grids are shed before point
    /// lookups.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] when the job's lane is at capacity,
    /// [`SubmitError::Closed`] after shutdown began.
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        if !self.state.open.load(Ordering::SeqCst) {
            return Err(SubmitError::Closed);
        }
        let limit = match job.priority {
            Priority::Interactive => self.state.capacity,
            Priority::Bulk => self.bulk_capacity(),
        };
        {
            let mut queue = self.state.queue.lock().expect("scheduler queue lock");
            if queue.len() >= limit {
                return Err(SubmitError::Busy);
            }
            queue.push_back(job);
        }
        self.state.available.notify_one();
        Ok(())
    }

    /// The bulk lane's admission bound: half the capacity, minimum 1.
    pub fn bulk_capacity(&self) -> usize {
        (self.state.capacity / 2).max(1)
    }

    /// Jobs waiting (not counting those being evaluated).
    pub fn queue_depth(&self) -> usize {
        self.state.queue.lock().expect("scheduler queue lock").len()
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.state.busy.len()
    }

    /// Workers currently evaluating.
    pub fn busy_workers(&self) -> usize {
        self.state
            .busy
            .iter()
            .filter(|g| g.busy_now.load(Ordering::Relaxed))
            .count()
    }

    /// Cumulative evaluation time per worker (utilization numerator).
    pub fn worker_busy(&self) -> Vec<Duration> {
        self.state
            .busy
            .iter()
            .map(|g| Duration::from_micros(g.busy_micros.load(Ordering::Relaxed)))
            .collect()
    }

    /// Design points evaluated since start.
    pub fn points_evaluated(&self) -> u64 {
        self.state.points_done.load(Ordering::Relaxed)
    }

    /// Observed mean evaluation time per point, or `None` before the
    /// first point completes.
    pub fn avg_point_micros(&self) -> Option<u64> {
        let (done, micros) = self.state.rate_snapshot();
        if done == 0 {
            return None;
        }
        Some(micros / done)
    }

    /// A queue-depth-aware `Retry-After` estimate in whole seconds: how
    /// long draining the current backlog should take at the observed
    /// service rate, clamped to `1..=60`. Before any point has completed
    /// the estimate assumes 50 ms per point rather than guessing zero.
    pub fn suggested_retry_after(&self) -> u64 {
        let per_point = self.avg_point_micros().unwrap_or(50_000).max(1);
        let backlog = self.queue_depth() as u64 + self.busy_workers() as u64;
        let workers = self.state.busy.len().max(1) as u64;
        let drain_micros = backlog.saturating_mul(per_point) / workers;
        drain_micros.div_ceil(1_000_000).clamp(1, 60)
    }

    /// Closes the queue and joins the workers. Jobs already queued are
    /// still evaluated (the drain); new submissions are refused.
    /// Idempotent — a second call finds no workers left to join.
    pub fn shutdown(&self) {
        self.state.open.store(false, Ordering::SeqCst);
        self.state.available.notify_all();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("scheduler workers lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(state: &State, index: usize) {
    loop {
        let batch = {
            let mut queue = state.queue.lock().expect("scheduler queue lock");
            loop {
                if let Some(first) = queue.pop_front() {
                    break claim_batch(&mut queue, first, state.max_batch);
                }
                if !state.open.load(Ordering::SeqCst) {
                    return;
                }
                queue = state
                    .available
                    .wait(queue)
                    .expect("scheduler queue lock poisoned");
            }
        };
        let gauge = &state.busy[index];
        gauge.busy_now.store(true, Ordering::Relaxed);
        let started = Instant::now();
        evaluate_batch(&state.policy, &batch);
        let elapsed = started.elapsed().as_micros() as u64;
        gauge.busy_micros.fetch_add(elapsed, Ordering::Relaxed);
        gauge.busy_now.store(false, Ordering::Relaxed);
        // Micros first (Release), count second: a reader that observes
        // the new `points_done` is guaranteed to also observe at least
        // the matching `eval_micros` — see `State::rate_snapshot`.
        state.eval_micros.fetch_add(elapsed, Ordering::Release);
        state
            .points_done
            .fetch_add(batch.len() as u64, Ordering::Release);
    }
}

/// Pulls every job compatible with `first` (same trace set by identity,
/// same warm-up) out of the queue, up to `max_batch` total, preserving
/// queue order for the rest.
fn claim_batch(queue: &mut VecDeque<Job>, first: Job, max_batch: usize) -> Vec<Job> {
    let mut batch = vec![first];
    let mut rest = VecDeque::with_capacity(queue.len());
    while let Some(job) = queue.pop_front() {
        let compatible = batch.len() < max_batch
            && Arc::ptr_eq(&job.traces, &batch[0].traces)
            && job.warmup == batch[0].warmup;
        if compatible {
            batch.push(job);
        } else {
            rest.push_back(job);
        }
    }
    *queue = rest;
    batch
}

/// Evaluates one coalesced batch as a grid under the supervisor,
/// streaming each point's result to its submitter as it completes.
fn evaluate_batch(policy: &SupervisorPolicy, batch: &[Job]) {
    let configs: Vec<CacheConfig> = batch.iter().map(|job| job.config).collect();
    let traces = &batch[0].traces.traces;
    let warmup = batch[0].warmup;
    // workers=1: parallelism is the scheduler's worker count, not a
    // nested pool per batch. The supervisor still plans multisim slices
    // over the whole batch, which is the coalescing payoff.
    let (_, _stats) =
        evaluate_results_supervised_with(policy, &configs, traces, warmup, Some(1), |i, result| {
            if let Some(job) = batch.get(i) {
                let _ = job.reply.send(JobResult {
                    key: job.key,
                    result: result.clone(),
                });
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::{point_key, trace_fingerprint};
    use occache_workloads::WorkloadSpec;
    use std::sync::mpsc::channel;

    // Local stand-ins for the workload helpers that live above this
    // crate: PDP-11 traces and the net-64, word-2 Table 1 grid.
    fn config(net: u64, block: u64, sub: u64) -> CacheConfig {
        CacheConfig::builder()
            .net_size(net)
            .block_size(block)
            .sub_block_size(sub)
            .word_size(2)
            .build()
            .expect("Table 1 geometry is valid")
    }

    fn grid_64() -> Vec<CacheConfig> {
        let mut configs = Vec::new();
        let mut block = 16u64;
        while block >= 2 {
            let mut sub = block;
            while sub >= 2 {
                configs.push(config(64, block, sub));
                sub /= 2;
            }
            block /= 2;
        }
        configs
    }

    fn small_set() -> Arc<TraceSet> {
        let spec = WorkloadSpec::pdp11_ed();
        let traces = vec![Trace::new(spec.name(), spec.generator(0).take(2_000))];
        let fingerprint = trace_fingerprint(&traces);
        Arc::new(TraceSet {
            traces,
            fingerprint,
        })
    }

    #[test]
    fn evaluates_submitted_jobs_and_echoes_keys() {
        let set = small_set();
        let sched = Scheduler::new(2, 16, 8, SupervisorPolicy::disabled());
        let (tx, rx) = channel();
        let configs = grid_64();
        for config in &configs {
            sched
                .submit(Job {
                    config: *config,
                    traces: Arc::clone(&set),
                    warmup: 0,
                    priority: Priority::Interactive,
                    key: point_key(config, set.fingerprint, 0),
                    reply: tx.clone(),
                })
                .unwrap();
        }
        drop(tx);
        let mut results: Vec<JobResult> = rx.iter().take(configs.len()).collect();
        assert_eq!(results.len(), configs.len());
        results.sort_by_key(|r| r.key);
        let mut expected: Vec<u64> = configs
            .iter()
            .map(|c| point_key(c, set.fingerprint, 0))
            .collect();
        expected.sort_unstable();
        assert_eq!(results.iter().map(|r| r.key).collect::<Vec<_>>(), expected);
        assert!(results.iter().all(|r| r.result.is_ok()));
        sched.shutdown();
    }

    #[test]
    fn full_queue_refuses_with_busy() {
        // Zero workers is clamped to one, so use a held-up scheduler:
        // capacity 1 with no worker able to keep up is hard to arrange
        // deterministically; instead close the window by filling the
        // queue before workers can drain (capacity 1, many instant
        // submits — at least one Busy must appear or all succeeded
        // because the pool kept pace; assert only the invariant that
        // submit never blocks).
        let set = small_set();
        let sched = Scheduler::new(1, 1, 1, SupervisorPolicy::disabled());
        let (tx, rx) = channel();
        let config = config(64, 8, 4);
        let mut accepted = 0usize;
        for _ in 0..64 {
            match sched.submit(Job {
                config,
                traces: Arc::clone(&set),
                warmup: 0,
                priority: Priority::Bulk,
                key: 1,
                reply: tx.clone(),
            }) {
                Ok(()) => accepted += 1,
                Err(SubmitError::Busy) => {}
                Err(SubmitError::Closed) => panic!("scheduler closed early"),
            }
        }
        drop(tx);
        assert!(accepted >= 1);
        let received = rx.iter().count();
        assert_eq!(received, accepted, "every accepted job must be answered");
        sched.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_refuses() {
        let set = small_set();
        let sched = Scheduler::new(1, 32, 32, SupervisorPolicy::disabled());
        let (tx, rx) = channel();
        let config = config(64, 16, 8);
        for _ in 0..8 {
            sched
                .submit(Job {
                    config,
                    traces: Arc::clone(&set),
                    warmup: 0,
                    priority: Priority::Interactive,
                    key: 7,
                    reply: tx.clone(),
                })
                .unwrap();
        }
        drop(tx);
        sched.shutdown();
        assert_eq!(rx.iter().count(), 8, "shutdown must drain the queue");
    }

    #[test]
    fn rate_snapshot_never_tears_under_concurrent_completion() {
        // A writer publishes (micros, done) in worker order — micros
        // first — with exactly 1 000 µs per point. Any coherent snapshot
        // therefore satisfies micros ≥ done × 1 000; a torn pair (fresh
        // count over a stale sum, the old two-Relaxed-loads bug) breaks
        // that and yields the 0 s Retry-After outlier.
        let state = Arc::new(State {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            open: AtomicBool::new(true),
            capacity: 1,
            max_batch: 1,
            policy: SupervisorPolicy::disabled(),
            busy: Vec::new(),
            points_done: AtomicU64::new(0),
            eval_micros: AtomicU64::new(0),
        });
        let writer = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                for _ in 0..50_000u64 {
                    state.eval_micros.fetch_add(1_000, Ordering::Release);
                    state.points_done.fetch_add(1, Ordering::Release);
                }
            })
        };
        let mut observed = 0u64;
        while observed < 50_000 {
            let (done, micros) = state.rate_snapshot();
            assert!(
                micros >= done.saturating_mul(1_000),
                "torn snapshot: done={done} micros={micros}"
            );
            observed = done;
        }
        writer.join().expect("writer thread");
        assert_eq!(state.rate_snapshot(), (50_000, 50_000_000));
    }

    #[test]
    fn bulk_lane_and_retry_estimate_are_bounded() {
        let sched = Scheduler::new(2, 8, 4, SupervisorPolicy::disabled());
        assert_eq!(sched.bulk_capacity(), 4);
        // No observations yet: the estimate falls back to the default
        // service time and stays within the clamp.
        assert!((1..=60).contains(&sched.suggested_retry_after()));
        assert_eq!(sched.avg_point_micros(), None);

        // After real work the rate estimate is observed, not guessed.
        let set = small_set();
        let (tx, rx) = channel();
        let config = config(64, 8, 4);
        sched
            .submit(Job {
                config,
                traces: Arc::clone(&set),
                warmup: 0,
                priority: Priority::Bulk,
                key: point_key(&config, set.fingerprint, 0),
                reply: tx,
            })
            .unwrap();
        assert!(rx.recv().expect("job answered").result.is_ok());
        sched.shutdown();
        assert_eq!(sched.points_evaluated(), 1);
        assert!(sched.avg_point_micros().is_some());
        assert!((1..=60).contains(&sched.suggested_retry_after()));
    }

    #[test]
    fn coalesced_batch_matches_direct_evaluation() {
        use crate::eval::evaluate_point;
        let set = small_set();
        let sched = Scheduler::new(1, 64, 64, SupervisorPolicy::disabled());
        let (tx, rx) = channel();
        let configs = grid_64();
        for config in &configs {
            sched
                .submit(Job {
                    config: *config,
                    traces: Arc::clone(&set),
                    warmup: 0,
                    priority: Priority::Interactive,
                    key: point_key(config, set.fingerprint, 0),
                    reply: tx.clone(),
                })
                .unwrap();
        }
        drop(tx);
        let results: Vec<JobResult> = rx.iter().collect();
        sched.shutdown();
        for config in &configs {
            let key = point_key(config, set.fingerprint, 0);
            let got = results
                .iter()
                .find(|r| r.key == key)
                .and_then(|r| r.result.as_ref().ok())
                .unwrap_or_else(|| panic!("missing result for {config}"));
            let direct = evaluate_point(*config, &set.traces, 0);
            assert_eq!(got.miss_ratio.to_bits(), direct.miss_ratio.to_bits());
            assert_eq!(got.traffic_ratio.to_bits(), direct.traffic_ratio.to_bits());
        }
    }
}
