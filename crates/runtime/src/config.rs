//! Every `OCCACHE_*` environment variable, parsed in one place.
//!
//! Before the runtime crate existed the parsing was scattered across
//! the batch harness (`sweep.rs`, `supervisor.rs`, `checkpoint.rs`,
//! `report.rs`) and the serving layer's `service.rs`, each with its own
//! strictness. The rule here is uniform: an *absent* variable means its
//! documented default, a *present but malformed* value is an error
//! naming the variable — a typo in `OCCACHE_REFS` must refuse to start,
//! not silently run the paper-size sweep. Binaries validate at startup
//! via the `try_*` accessors; the `*_lenient` forms exist only for
//! mid-run contexts where aborting would waste completed work.
//!
//! The variables (see the EXPERIMENTS.md table for the operator view):
//!
//! | variable | parsed by | default |
//! |---|---|---|
//! | `OCCACHE_REFS` | [`env_usize`] | caller-supplied (paper: 1 M) |
//! | `OCCACHE_WARMUP` | [`env_usize`] | 0 |
//! | `OCCACHE_JOBS` | [`try_jobs`] | hardware parallelism |
//! | `OCCACHE_SLICE_THREADS` | [`try_slice_threads`] | `OCCACHE_JOBS`, else hardware |
//! | `OCCACHE_NO_MULTISIM` | [`try_multisim_disabled`] | none disabled |
//! | `OCCACHE_REPLACEMENT` | [`try_replacement_override`] | grid default (LRU) |
//! | `OCCACHE_FRESH` | [`fresh_requested`] | off |
//! | `OCCACHE_RESULTS` | [`results_dir`] | `results/` |
//! | `OCCACHE_POINT_TIMEOUT` | [`parse_timeout`] | 300 s |
//! | `OCCACHE_POINT_RETRIES` | `SupervisorPolicy::try_from_env` | 1 |
//! | `OCCACHE_FAULT_POINT` | `FaultPlan::parse` | none |
//! | `OCCACHE_SERVE_CONN_TIMEOUT` | [`env_timeout`] | 5 s |
//! | `OCCACHE_SERVE_FAULT` | `occache-serve::fault` | none |
//! | `OCCACHE_SERVE_*` | [`env_usize_opt`] | see `ServiceConfig` |
//! | `OCCACHE_PEERS` | [`try_peers`] | none (single-node) |
//! | `OCCACHE_SELF` | [`try_self_addr`] | none |
//! | `OCCACHE_PEER_TIMEOUT` | [`try_peer_timeout`] | 2 s |
//! | `OCCACHE_PEER_RETRIES` | [`try_peer_retries`] | 1 |

use std::path::PathBuf;
use std::time::Duration;

/// Parses a non-negative-integer env var strictly: absent → `default`,
/// present but unparsable → an error naming the variable (a typo in
/// `OCCACHE_REFS` must not silently run the paper-size sweep).
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn env_usize(var: &str, default: usize) -> Result<usize, String> {
    env_usize_opt(var).map(|v| v.unwrap_or(default))
}

/// Like [`env_usize`] but distinguishes "absent" from any default:
/// `Ok(None)` when the variable is unset, so callers with computed
/// defaults (hardware parallelism, derived capacities) can fall back
/// themselves.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn env_usize_opt(var: &str) -> Result<Option<usize>, String> {
    match std::env::var(var) {
        Ok(v) => v
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| format!("{var}={v:?} is not a non-negative integer")),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{var} is not valid UTF-8")),
    }
}

/// Worker-thread override for the sweep pools: `OCCACHE_JOBS` env var.
/// `Ok(None)` (unset or `0`) means "use the hardware parallelism";
/// `OCCACHE_JOBS=1` forces a serial pool, which preserves byte-identical
/// artifact and journal-append order.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_jobs() -> Result<Option<usize>, String> {
    env_usize("OCCACHE_JOBS", 0).map(|n| if n == 0 { None } else { Some(n) })
}

/// Worker-thread override specific to sweep-slice execution:
/// `OCCACHE_SLICE_THREADS` env var. `Ok(None)` (unset or `0`) means
/// "defer" — callers fall through to [`try_jobs`] and then to the
/// hardware parallelism; `OCCACHE_SLICE_THREADS=1` forces slices to run
/// serially. Unlike `OCCACHE_JOBS` it does not touch the serving
/// layer's pools, so an operator can pin slice concurrency without
/// resizing everything else. Malformed values are an error naming the
/// variable — same strictness as every other `OCCACHE_*` knob.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_slice_threads() -> Result<Option<usize>, String> {
    env_usize("OCCACHE_SLICE_THREADS", 0).map(|n| if n == 0 { None } else { Some(n) })
}

/// How many completed points between progress-feed flushes:
/// `OCCACHE_PROGRESS_EVERY` env var, default 16. `0`/unset means the
/// default; `1` flushes on every completion (CI uses this to observe
/// short sweeps).
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_progress_every() -> Result<usize, String> {
    env_usize("OCCACHE_PROGRESS_EVERY", 0).map(|n| if n == 0 { 16 } else { n })
}

/// Dashboard refresh interval for `occache-top`: `OCCACHE_TOP_TICK`
/// milliseconds (default 1000, minimum 100 — a faster redraw than that
/// only burns CPU the sweeps need).
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_top_tick_ms() -> Result<u64, String> {
    env_usize("OCCACHE_TOP_TICK", 1000).map(|n| (n as u64).max(100))
}

/// Which one-pass engines `OCCACHE_NO_MULTISIM` forces off, routing
/// their points to the direct simulator instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DisabledEngines {
    /// The permutation-packed LRU engine is off.
    pub lru: bool,
    /// The one-pass FIFO engine is off.
    pub fifo: bool,
    /// The seeded Random engine is off.
    pub random: bool,
}

impl DisabledEngines {
    /// Every engine enabled (the default).
    pub const NONE: DisabledEngines = DisabledEngines {
        lru: false,
        fifo: false,
        random: false,
    };

    /// Every engine disabled: the all-direct escape hatch.
    pub const ALL: DisabledEngines = DisabledEngines {
        lru: true,
        fifo: true,
        random: true,
    };

    /// Whether `kind`'s engine is disabled.
    pub fn contains(self, kind: occache_core::EngineKind) -> bool {
        match kind {
            occache_core::EngineKind::Lru => self.lru,
            occache_core::EngineKind::Fifo => self.fifo,
            occache_core::EngineKind::Random => self.random,
        }
    }

    fn set(&mut self, kind: occache_core::EngineKind) {
        match kind {
            occache_core::EngineKind::Lru => self.lru = true,
            occache_core::EngineKind::Fifo => self.fifo = true,
            occache_core::EngineKind::Random => self.random = true,
        }
    }

    /// Parses an `OCCACHE_NO_MULTISIM` value: empty or `0` disables
    /// nothing, `1` or `all` disables every engine (the historical
    /// all-or-nothing behaviour), and otherwise a comma-separated list
    /// of engine names (`lru`, `fifo`, `random`, case-insensitive,
    /// whitespace around items ignored) disables exactly those.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending item when the list
    /// contains anything that is not an engine name.
    pub fn parse(value: &str) -> Result<DisabledEngines, String> {
        let v = value.trim();
        if v.is_empty() || v == "0" {
            return Ok(DisabledEngines::NONE);
        }
        if v == "1" || v.eq_ignore_ascii_case("all") {
            return Ok(DisabledEngines::ALL);
        }
        let mut out = DisabledEngines::NONE;
        for item in v.split(',') {
            let item = item.trim();
            match occache_core::EngineKind::parse(item) {
                Some(kind) => out.set(kind),
                None => {
                    return Err(format!(
                        "{item:?} is not an engine name (expected lru, fifo or random)"
                    ));
                }
            }
        }
        Ok(out)
    }
}

/// Which engines `OCCACHE_NO_MULTISIM` forces off, strictly parsed:
/// unset means none, and see [`DisabledEngines::parse`] for the value
/// grammar (`fifo,random` disables those two; `1`/`all` disables every
/// engine — equivalence tests and honest before/after timing use it).
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_multisim_disabled() -> Result<DisabledEngines, String> {
    match std::env::var("OCCACHE_NO_MULTISIM") {
        Ok(v) => DisabledEngines::parse(&v).map_err(|e| format!("OCCACHE_NO_MULTISIM: {e}")),
        Err(std::env::VarError::NotPresent) => Ok(DisabledEngines::NONE),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("OCCACHE_NO_MULTISIM is not valid UTF-8".to_string())
        }
    }
}

/// [`try_multisim_disabled`] for mid-run contexts: a malformed value
/// disables *every* engine rather than erroring out — the conservative
/// reading (the variable was set to turn engines off) and a superset of
/// the historical any-nonempty-value behaviour.
pub fn multisim_disabled() -> DisabledEngines {
    try_multisim_disabled().unwrap_or(DisabledEngines::ALL)
}

/// The replacement-policy override for grid builders:
/// `OCCACHE_REPLACEMENT` env var — `lru`, `fifo` or `random`
/// (case-insensitive). `Ok(None)` when unset or empty: keep the grid's
/// own default. This is how a stock Table-7 sweep is re-run down a
/// different policy axis without a dedicated binary.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_replacement_override() -> Result<Option<occache_core::ReplacementPolicy>, String> {
    match std::env::var("OCCACHE_REPLACEMENT") {
        Ok(v) => {
            let v = v.trim();
            if v.is_empty() {
                return Ok(None);
            }
            if v.eq_ignore_ascii_case("lru") {
                Ok(Some(occache_core::ReplacementPolicy::Lru))
            } else if v.eq_ignore_ascii_case("fifo") {
                Ok(Some(occache_core::ReplacementPolicy::Fifo))
            } else if v.eq_ignore_ascii_case("random") {
                Ok(Some(occache_core::ReplacementPolicy::Random))
            } else {
                Err(format!(
                    "OCCACHE_REPLACEMENT={v:?} is not a replacement policy (expected lru, fifo or random)"
                ))
            }
        }
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err("OCCACHE_REPLACEMENT is not valid UTF-8".to_string())
        }
    }
}

/// [`try_replacement_override`] for mid-run contexts: a malformed value
/// keeps the grid default instead of erroring out.
pub fn replacement_override() -> Option<occache_core::ReplacementPolicy> {
    try_replacement_override().unwrap_or(None)
}

/// Whether the user asked to ignore existing checkpoints: `--fresh` on the
/// command line or `OCCACHE_FRESH` set to anything but `0`/empty.
pub fn fresh_requested() -> bool {
    if std::env::args().any(|a| a == "--fresh") {
        return true;
    }
    match std::env::var("OCCACHE_FRESH") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// The results directory: `OCCACHE_RESULTS` env var, defaulting to
/// `results/`. Never fails — a directory name needs no parsing.
pub fn results_dir() -> PathBuf {
    std::env::var_os("OCCACHE_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Parses `OCCACHE_POINT_TIMEOUT`: seconds as a float, with `0`, `off`
/// or the empty string disabling the deadline.
///
/// # Errors
///
/// Returns a message naming the variable for non-numeric, non-finite or
/// non-positive values.
pub fn parse_timeout(raw: &str) -> Result<Option<Duration>, String> {
    parse_timeout_var("OCCACHE_POINT_TIMEOUT", raw)
}

/// Parses a seconds-as-float deadline value for any named variable:
/// `0`, `off` or the empty string disable the deadline
/// (`OCCACHE_POINT_TIMEOUT`, `OCCACHE_SERVE_CONN_TIMEOUT`).
///
/// # Errors
///
/// Returns a message naming `var` for non-numeric, non-finite or
/// non-positive values.
pub fn parse_timeout_var(var: &str, raw: &str) -> Result<Option<Duration>, String> {
    let raw = raw.trim();
    if raw.is_empty() || raw == "0" || raw.eq_ignore_ascii_case("off") {
        return Ok(None);
    }
    let secs: f64 = raw
        .parse()
        .map_err(|_| format!("{var} `{raw}` is not a number of seconds"))?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!(
            "{var} `{raw}` must be a positive number of seconds"
        ));
    }
    Ok(Some(Duration::from_secs_f64(secs)))
}

/// Reads and parses a seconds-as-float deadline env var: unset means
/// `default`, `0`/`off`/empty disables, anything else must parse.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn env_timeout(var: &str, default: Option<Duration>) -> Result<Option<Duration>, String> {
    match std::env::var(var) {
        Ok(raw) => parse_timeout_var(var, &raw),
        Err(std::env::VarError::NotPresent) => Ok(default),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{var} is not valid UTF-8")),
    }
}

/// Default deadline for one peer HTTP call (`OCCACHE_PEER_TIMEOUT`).
pub const DEFAULT_PEER_TIMEOUT: Duration = Duration::from_secs(2);

/// Default bounded retry count for peer calls (`OCCACHE_PEER_RETRIES`).
pub const DEFAULT_PEER_RETRIES: usize = 1;

/// Validates one `host:port` peer address: non-empty host, numeric port
/// in `1..=65535`. Kept to syntax only — resolution happens at connect
/// time so a cluster can be configured before every node is up.
///
/// # Errors
///
/// Returns a message naming `var` and quoting the offending entry.
pub fn parse_peer_addr(var: &str, raw: &str) -> Result<String, String> {
    let raw = raw.trim();
    let Some((host, port)) = raw.rsplit_once(':') else {
        return Err(format!("{var} entry {raw:?} is not host:port"));
    };
    if host.is_empty() {
        return Err(format!("{var} entry {raw:?} has an empty host"));
    }
    match port.parse::<u32>() {
        Ok(p) if (1..=65_535).contains(&p) => Ok(format!("{host}:{port}")),
        _ => Err(format!("{var} entry {raw:?} has an invalid port")),
    }
}

/// Parses `OCCACHE_PEERS`: a comma-separated static peer list of
/// `host:port` addresses. `Ok(None)` when unset (single-node mode).
/// Fail-fast on anything questionable — an empty list, a malformed
/// entry, or a duplicate address refuses to start, because a typo here
/// silently reshards the keyspace.
///
/// # Errors
///
/// Returns a message naming the variable and the offending entry.
pub fn try_peers() -> Result<Option<Vec<String>>, String> {
    let raw = match std::env::var("OCCACHE_PEERS") {
        Ok(v) => v,
        Err(std::env::VarError::NotPresent) => return Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            return Err("OCCACHE_PEERS is not valid UTF-8".into());
        }
    };
    let mut peers = Vec::new();
    for entry in raw.split(',') {
        let addr = parse_peer_addr("OCCACHE_PEERS", entry)?;
        if peers.contains(&addr) {
            return Err(format!("OCCACHE_PEERS lists {addr:?} twice"));
        }
        peers.push(addr);
    }
    if peers.is_empty() {
        return Err("OCCACHE_PEERS is set but names no peers".into());
    }
    Ok(Some(peers))
}

/// Parses `OCCACHE_SELF`: this node's own entry in the peer list, so a
/// shard knows which keys it owns. Must be present and a member of
/// `peers` whenever `OCCACHE_PEERS` is set on a node.
///
/// # Errors
///
/// Returns a message naming the variable when absent, malformed, or not
/// listed in `peers`.
pub fn try_self_addr(peers: &[String]) -> Result<String, String> {
    let raw = match std::env::var("OCCACHE_SELF") {
        Ok(v) => v,
        Err(std::env::VarError::NotPresent) => {
            return Err("OCCACHE_PEERS is set but OCCACHE_SELF is not".into());
        }
        Err(std::env::VarError::NotUnicode(_)) => {
            return Err("OCCACHE_SELF is not valid UTF-8".into());
        }
    };
    let addr = parse_peer_addr("OCCACHE_SELF", &raw)?;
    if !peers.iter().any(|p| p == &addr) {
        return Err(format!("OCCACHE_SELF {addr:?} is not in OCCACHE_PEERS"));
    }
    Ok(addr)
}

/// Parses `OCCACHE_PEER_TIMEOUT`: the strict per-call deadline on peer
/// fill/probe requests, seconds as a float (default 2 s). Unlike the
/// connection timeouts this one cannot be disabled — a peer call with no
/// deadline would couple one node's latency to another's failure, which
/// is the exact coupling the breaker exists to cut.
///
/// # Errors
///
/// Returns a message naming the variable when set but malformed or `off`.
pub fn try_peer_timeout() -> Result<Duration, String> {
    match env_timeout("OCCACHE_PEER_TIMEOUT", Some(DEFAULT_PEER_TIMEOUT))? {
        Some(d) => Ok(d),
        None => Err(
            "OCCACHE_PEER_TIMEOUT must be a positive deadline (peer calls cannot run unbounded)"
                .into(),
        ),
    }
}

/// Parses `OCCACHE_PEER_RETRIES`: how many times a failed peer call is
/// retried (with deterministic backoff) before the node gives up and
/// computes locally. Default 1; `0` disables retries but still falls
/// back to local computation.
///
/// # Errors
///
/// Returns a message naming the variable when set but malformed.
pub fn try_peer_retries() -> Result<usize, String> {
    env_usize("OCCACHE_PEER_RETRIES", DEFAULT_PEER_RETRIES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_is_strict_on_malformed_values() {
        // Uses a variable we control to avoid races with other tests
        // reading the real OCCACHE_* variables.
        std::env::set_var("OCCACHE_TEST_ENV_USIZE", "12abc");
        assert!(env_usize("OCCACHE_TEST_ENV_USIZE", 5).is_err());
        std::env::set_var("OCCACHE_TEST_ENV_USIZE", " 42 ");
        assert_eq!(env_usize("OCCACHE_TEST_ENV_USIZE", 5), Ok(42));
        std::env::remove_var("OCCACHE_TEST_ENV_USIZE");
        assert_eq!(env_usize("OCCACHE_TEST_ENV_USIZE", 5), Ok(5));
        assert_eq!(env_usize_opt("OCCACHE_TEST_ENV_USIZE"), Ok(None));
    }

    #[test]
    fn peer_addr_parsing_is_strict() {
        assert_eq!(
            parse_peer_addr("OCCACHE_PEERS", " 10.0.0.1:7800 "),
            Ok("10.0.0.1:7800".to_string())
        );
        assert!(parse_peer_addr("OCCACHE_PEERS", "no-port").is_err());
        assert!(parse_peer_addr("OCCACHE_PEERS", ":7800").is_err());
        assert!(parse_peer_addr("OCCACHE_PEERS", "host:").is_err());
        assert!(parse_peer_addr("OCCACHE_PEERS", "host:0").is_err());
        assert!(parse_peer_addr("OCCACHE_PEERS", "host:65536").is_err());
        assert!(parse_peer_addr("OCCACHE_PEERS", "host:80x").is_err());
    }

    #[test]
    fn self_addr_must_be_a_listed_peer() {
        // try_self_addr reads OCCACHE_SELF; no other test touches it, so
        // set/remove here races with nothing.
        let peers = vec!["a:1".to_string(), "b:2".to_string()];
        std::env::remove_var("OCCACHE_SELF");
        assert!(try_self_addr(&peers).is_err());
        std::env::set_var("OCCACHE_SELF", "c:3");
        assert!(try_self_addr(&peers).is_err());
        std::env::set_var("OCCACHE_SELF", "bad");
        assert!(try_self_addr(&peers).is_err());
        std::env::set_var("OCCACHE_SELF", "b:2");
        assert_eq!(try_self_addr(&peers), Ok("b:2".to_string()));
        std::env::remove_var("OCCACHE_SELF");
    }

    #[test]
    fn peer_env_vars_parse_strictly() {
        // One test covers all three peer variables so no parallel test
        // observes a transient set_var (tests share the process env).
        assert_eq!(try_peers(), Ok(None));
        assert_eq!(try_peer_timeout(), Ok(DEFAULT_PEER_TIMEOUT));
        assert_eq!(try_peer_retries(), Ok(DEFAULT_PEER_RETRIES));

        std::env::set_var("OCCACHE_PEERS", "a:1,b:2,a:1");
        assert!(try_peers().unwrap_err().contains("twice"));
        std::env::set_var("OCCACHE_PEERS", "a:1,,b:2");
        assert!(try_peers().is_err());
        std::env::set_var("OCCACHE_PEERS", "");
        assert!(try_peers().is_err());
        std::env::set_var("OCCACHE_PEERS", "a:1, b:2");
        assert_eq!(
            try_peers(),
            Ok(Some(vec!["a:1".to_string(), "b:2".to_string()]))
        );
        std::env::remove_var("OCCACHE_PEERS");

        std::env::set_var("OCCACHE_PEER_TIMEOUT", "soon");
        assert!(try_peer_timeout().is_err());
        std::env::set_var("OCCACHE_PEER_TIMEOUT", "off");
        assert!(
            try_peer_timeout().is_err(),
            "peer deadline cannot be disabled"
        );
        std::env::set_var("OCCACHE_PEER_TIMEOUT", "0.5");
        assert_eq!(try_peer_timeout(), Ok(Duration::from_millis(500)));
        std::env::remove_var("OCCACHE_PEER_TIMEOUT");

        std::env::set_var("OCCACHE_PEER_RETRIES", "-1");
        assert!(try_peer_retries().is_err());
        std::env::set_var("OCCACHE_PEER_RETRIES", "3");
        assert_eq!(try_peer_retries(), Ok(3));
        std::env::remove_var("OCCACHE_PEER_RETRIES");
    }

    #[test]
    fn disabled_engines_parse_covers_grammar_and_malformed_values() {
        use occache_core::EngineKind;
        // Value-level parsing needs no env vars, so it cannot race.
        assert_eq!(DisabledEngines::parse(""), Ok(DisabledEngines::NONE));
        assert_eq!(DisabledEngines::parse(" 0 "), Ok(DisabledEngines::NONE));
        assert_eq!(DisabledEngines::parse("1"), Ok(DisabledEngines::ALL));
        assert_eq!(DisabledEngines::parse("all"), Ok(DisabledEngines::ALL));
        assert_eq!(DisabledEngines::parse("ALL"), Ok(DisabledEngines::ALL));
        let fr = DisabledEngines::parse("fifo,random").unwrap();
        assert!(fr.fifo && fr.random && !fr.lru);
        assert!(fr.contains(EngineKind::Fifo));
        assert!(fr.contains(EngineKind::Random));
        assert!(!fr.contains(EngineKind::Lru));
        let spaced = DisabledEngines::parse(" LRU , fifo ").unwrap();
        assert!(spaced.lru && spaced.fifo && !spaced.random);
        assert_eq!(
            DisabledEngines::parse("random,random"),
            Ok(DisabledEngines {
                random: true,
                ..DisabledEngines::NONE
            })
        );
        // Malformed values: anything that is not an engine name, a
        // trailing comma's empty item, and the old truthy forms that
        // never named engines.
        for bad in [
            "direct",
            "fifo,",
            ",fifo",
            "yes",
            "2",
            "fifo;random",
            "fifo random",
        ] {
            assert!(DisabledEngines::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn multisim_disabled_env_is_strict_then_lenient() {
        // try_multisim_disabled reads OCCACHE_NO_MULTISIM; only this
        // test sets it, and executor tests that read it never run while
        // it is set to a malformed value long enough to matter — keep
        // the set/remove window minimal anyway.
        assert_eq!(try_multisim_disabled(), Ok(DisabledEngines::NONE));
        std::env::set_var("OCCACHE_NO_MULTISIM", "fifo, random");
        assert_eq!(
            try_multisim_disabled(),
            Ok(DisabledEngines {
                fifo: true,
                random: true,
                ..DisabledEngines::NONE
            })
        );
        std::env::set_var("OCCACHE_NO_MULTISIM", "sometimes");
        let err = try_multisim_disabled().unwrap_err();
        assert!(err.contains("OCCACHE_NO_MULTISIM"), "{err}");
        // Lenient mid-run reading: malformed means "all off", the
        // conservative superset of the historical truthy behaviour.
        assert_eq!(multisim_disabled(), DisabledEngines::ALL);
        std::env::remove_var("OCCACHE_NO_MULTISIM");
        assert_eq!(multisim_disabled(), DisabledEngines::NONE);
    }

    #[test]
    fn replacement_override_parses_strictly() {
        use occache_core::ReplacementPolicy;
        // try_replacement_override reads OCCACHE_REPLACEMENT; no other
        // test touches it.
        assert_eq!(try_replacement_override(), Ok(None));
        std::env::set_var("OCCACHE_REPLACEMENT", "fifo");
        assert_eq!(
            try_replacement_override(),
            Ok(Some(ReplacementPolicy::Fifo))
        );
        std::env::set_var("OCCACHE_REPLACEMENT", " Random ");
        assert_eq!(
            try_replacement_override(),
            Ok(Some(ReplacementPolicy::Random))
        );
        std::env::set_var("OCCACHE_REPLACEMENT", "LRU");
        assert_eq!(try_replacement_override(), Ok(Some(ReplacementPolicy::Lru)));
        std::env::set_var("OCCACHE_REPLACEMENT", "");
        assert_eq!(try_replacement_override(), Ok(None));
        std::env::set_var("OCCACHE_REPLACEMENT", "mru");
        assert!(try_replacement_override().is_err());
        assert_eq!(replacement_override(), None);
        std::env::remove_var("OCCACHE_REPLACEMENT");
    }

    #[test]
    fn timeout_parsing_covers_off_and_seconds() {
        assert_eq!(parse_timeout("").unwrap(), None);
        assert_eq!(parse_timeout("0").unwrap(), None);
        assert_eq!(parse_timeout("off").unwrap(), None);
        assert_eq!(parse_timeout("OFF").unwrap(), None);
        assert_eq!(
            parse_timeout("2.5").unwrap(),
            Some(Duration::from_millis(2_500))
        );
        assert!(parse_timeout("-1").is_err());
        assert!(parse_timeout("soon").is_err());
        assert!(parse_timeout("inf").is_err());
    }
}
