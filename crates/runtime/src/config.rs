//! Every `OCCACHE_*` environment variable, parsed in one place.
//!
//! Before the runtime crate existed the parsing was scattered across
//! the batch harness (`sweep.rs`, `supervisor.rs`, `checkpoint.rs`,
//! `report.rs`) and the serving layer's `service.rs`, each with its own
//! strictness. The rule here is uniform: an *absent* variable means its
//! documented default, a *present but malformed* value is an error
//! naming the variable — a typo in `OCCACHE_REFS` must refuse to start,
//! not silently run the paper-size sweep. Binaries validate at startup
//! via the `try_*` accessors; the `*_lenient` forms exist only for
//! mid-run contexts where aborting would waste completed work.
//!
//! The variables (see the EXPERIMENTS.md table for the operator view):
//!
//! | variable | parsed by | default |
//! |---|---|---|
//! | `OCCACHE_REFS` | [`env_usize`] | caller-supplied (paper: 1 M) |
//! | `OCCACHE_WARMUP` | [`env_usize`] | 0 |
//! | `OCCACHE_JOBS` | [`try_jobs`] | hardware parallelism |
//! | `OCCACHE_SLICE_THREADS` | [`try_slice_threads`] | `OCCACHE_JOBS`, else hardware |
//! | `OCCACHE_NO_MULTISIM` | [`multisim_disabled`] | off |
//! | `OCCACHE_FRESH` | [`fresh_requested`] | off |
//! | `OCCACHE_RESULTS` | [`results_dir`] | `results/` |
//! | `OCCACHE_POINT_TIMEOUT` | [`parse_timeout`] | 300 s |
//! | `OCCACHE_POINT_RETRIES` | `SupervisorPolicy::try_from_env` | 1 |
//! | `OCCACHE_FAULT_POINT` | `FaultPlan::parse` | none |
//! | `OCCACHE_SERVE_CONN_TIMEOUT` | [`env_timeout`] | 5 s |
//! | `OCCACHE_SERVE_FAULT` | `occache-serve::fault` | none |
//! | `OCCACHE_SERVE_*` | [`env_usize_opt`] | see `ServiceConfig` |
//! | `OCCACHE_PEERS` | [`try_peers`] | none (single-node) |
//! | `OCCACHE_SELF` | [`try_self_addr`] | none |
//! | `OCCACHE_PEER_TIMEOUT` | [`try_peer_timeout`] | 2 s |
//! | `OCCACHE_PEER_RETRIES` | [`try_peer_retries`] | 1 |

use std::path::PathBuf;
use std::time::Duration;

/// Parses a non-negative-integer env var strictly: absent → `default`,
/// present but unparsable → an error naming the variable (a typo in
/// `OCCACHE_REFS` must not silently run the paper-size sweep).
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn env_usize(var: &str, default: usize) -> Result<usize, String> {
    env_usize_opt(var).map(|v| v.unwrap_or(default))
}

/// Like [`env_usize`] but distinguishes "absent" from any default:
/// `Ok(None)` when the variable is unset, so callers with computed
/// defaults (hardware parallelism, derived capacities) can fall back
/// themselves.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn env_usize_opt(var: &str) -> Result<Option<usize>, String> {
    match std::env::var(var) {
        Ok(v) => v
            .trim()
            .parse()
            .map(Some)
            .map_err(|_| format!("{var}={v:?} is not a non-negative integer")),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{var} is not valid UTF-8")),
    }
}

/// Worker-thread override for the sweep pools: `OCCACHE_JOBS` env var.
/// `Ok(None)` (unset or `0`) means "use the hardware parallelism";
/// `OCCACHE_JOBS=1` forces a serial pool, which preserves byte-identical
/// artifact and journal-append order.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_jobs() -> Result<Option<usize>, String> {
    env_usize("OCCACHE_JOBS", 0).map(|n| if n == 0 { None } else { Some(n) })
}

/// Worker-thread override specific to sweep-slice execution:
/// `OCCACHE_SLICE_THREADS` env var. `Ok(None)` (unset or `0`) means
/// "defer" — callers fall through to [`try_jobs`] and then to the
/// hardware parallelism; `OCCACHE_SLICE_THREADS=1` forces slices to run
/// serially. Unlike `OCCACHE_JOBS` it does not touch the serving
/// layer's pools, so an operator can pin slice concurrency without
/// resizing everything else. Malformed values are an error naming the
/// variable — same strictness as every other `OCCACHE_*` knob.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_slice_threads() -> Result<Option<usize>, String> {
    env_usize("OCCACHE_SLICE_THREADS", 0).map(|n| if n == 0 { None } else { Some(n) })
}

/// How many completed points between progress-feed flushes:
/// `OCCACHE_PROGRESS_EVERY` env var, default 16. `0`/unset means the
/// default; `1` flushes on every completion (CI uses this to observe
/// short sweeps).
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_progress_every() -> Result<usize, String> {
    env_usize("OCCACHE_PROGRESS_EVERY", 0).map(|n| if n == 0 { 16 } else { n })
}

/// Dashboard refresh interval for `occache-top`: `OCCACHE_TOP_TICK`
/// milliseconds (default 1000, minimum 100 — a faster redraw than that
/// only burns CPU the sweeps need).
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn try_top_tick_ms() -> Result<u64, String> {
    env_usize("OCCACHE_TOP_TICK", 1000).map(|n| (n as u64).max(100))
}

/// Whether `OCCACHE_NO_MULTISIM` forces the direct simulator for every
/// point (equivalence tests and honest before/after timing set it).
pub fn multisim_disabled() -> bool {
    std::env::var("OCCACHE_NO_MULTISIM").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Whether the user asked to ignore existing checkpoints: `--fresh` on the
/// command line or `OCCACHE_FRESH` set to anything but `0`/empty.
pub fn fresh_requested() -> bool {
    if std::env::args().any(|a| a == "--fresh") {
        return true;
    }
    match std::env::var("OCCACHE_FRESH") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// The results directory: `OCCACHE_RESULTS` env var, defaulting to
/// `results/`. Never fails — a directory name needs no parsing.
pub fn results_dir() -> PathBuf {
    std::env::var_os("OCCACHE_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Parses `OCCACHE_POINT_TIMEOUT`: seconds as a float, with `0`, `off`
/// or the empty string disabling the deadline.
///
/// # Errors
///
/// Returns a message naming the variable for non-numeric, non-finite or
/// non-positive values.
pub fn parse_timeout(raw: &str) -> Result<Option<Duration>, String> {
    parse_timeout_var("OCCACHE_POINT_TIMEOUT", raw)
}

/// Parses a seconds-as-float deadline value for any named variable:
/// `0`, `off` or the empty string disable the deadline
/// (`OCCACHE_POINT_TIMEOUT`, `OCCACHE_SERVE_CONN_TIMEOUT`).
///
/// # Errors
///
/// Returns a message naming `var` for non-numeric, non-finite or
/// non-positive values.
pub fn parse_timeout_var(var: &str, raw: &str) -> Result<Option<Duration>, String> {
    let raw = raw.trim();
    if raw.is_empty() || raw == "0" || raw.eq_ignore_ascii_case("off") {
        return Ok(None);
    }
    let secs: f64 = raw
        .parse()
        .map_err(|_| format!("{var} `{raw}` is not a number of seconds"))?;
    if !secs.is_finite() || secs <= 0.0 {
        return Err(format!(
            "{var} `{raw}` must be a positive number of seconds"
        ));
    }
    Ok(Some(Duration::from_secs_f64(secs)))
}

/// Reads and parses a seconds-as-float deadline env var: unset means
/// `default`, `0`/`off`/empty disables, anything else must parse.
///
/// # Errors
///
/// Returns a message naming the variable when it is set but malformed.
pub fn env_timeout(var: &str, default: Option<Duration>) -> Result<Option<Duration>, String> {
    match std::env::var(var) {
        Ok(raw) => parse_timeout_var(var, &raw),
        Err(std::env::VarError::NotPresent) => Ok(default),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{var} is not valid UTF-8")),
    }
}

/// Default deadline for one peer HTTP call (`OCCACHE_PEER_TIMEOUT`).
pub const DEFAULT_PEER_TIMEOUT: Duration = Duration::from_secs(2);

/// Default bounded retry count for peer calls (`OCCACHE_PEER_RETRIES`).
pub const DEFAULT_PEER_RETRIES: usize = 1;

/// Validates one `host:port` peer address: non-empty host, numeric port
/// in `1..=65535`. Kept to syntax only — resolution happens at connect
/// time so a cluster can be configured before every node is up.
///
/// # Errors
///
/// Returns a message naming `var` and quoting the offending entry.
pub fn parse_peer_addr(var: &str, raw: &str) -> Result<String, String> {
    let raw = raw.trim();
    let Some((host, port)) = raw.rsplit_once(':') else {
        return Err(format!("{var} entry {raw:?} is not host:port"));
    };
    if host.is_empty() {
        return Err(format!("{var} entry {raw:?} has an empty host"));
    }
    match port.parse::<u32>() {
        Ok(p) if (1..=65_535).contains(&p) => Ok(format!("{host}:{port}")),
        _ => Err(format!("{var} entry {raw:?} has an invalid port")),
    }
}

/// Parses `OCCACHE_PEERS`: a comma-separated static peer list of
/// `host:port` addresses. `Ok(None)` when unset (single-node mode).
/// Fail-fast on anything questionable — an empty list, a malformed
/// entry, or a duplicate address refuses to start, because a typo here
/// silently reshards the keyspace.
///
/// # Errors
///
/// Returns a message naming the variable and the offending entry.
pub fn try_peers() -> Result<Option<Vec<String>>, String> {
    let raw = match std::env::var("OCCACHE_PEERS") {
        Ok(v) => v,
        Err(std::env::VarError::NotPresent) => return Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            return Err("OCCACHE_PEERS is not valid UTF-8".into());
        }
    };
    let mut peers = Vec::new();
    for entry in raw.split(',') {
        let addr = parse_peer_addr("OCCACHE_PEERS", entry)?;
        if peers.contains(&addr) {
            return Err(format!("OCCACHE_PEERS lists {addr:?} twice"));
        }
        peers.push(addr);
    }
    if peers.is_empty() {
        return Err("OCCACHE_PEERS is set but names no peers".into());
    }
    Ok(Some(peers))
}

/// Parses `OCCACHE_SELF`: this node's own entry in the peer list, so a
/// shard knows which keys it owns. Must be present and a member of
/// `peers` whenever `OCCACHE_PEERS` is set on a node.
///
/// # Errors
///
/// Returns a message naming the variable when absent, malformed, or not
/// listed in `peers`.
pub fn try_self_addr(peers: &[String]) -> Result<String, String> {
    let raw = match std::env::var("OCCACHE_SELF") {
        Ok(v) => v,
        Err(std::env::VarError::NotPresent) => {
            return Err("OCCACHE_PEERS is set but OCCACHE_SELF is not".into());
        }
        Err(std::env::VarError::NotUnicode(_)) => {
            return Err("OCCACHE_SELF is not valid UTF-8".into());
        }
    };
    let addr = parse_peer_addr("OCCACHE_SELF", &raw)?;
    if !peers.iter().any(|p| p == &addr) {
        return Err(format!("OCCACHE_SELF {addr:?} is not in OCCACHE_PEERS"));
    }
    Ok(addr)
}

/// Parses `OCCACHE_PEER_TIMEOUT`: the strict per-call deadline on peer
/// fill/probe requests, seconds as a float (default 2 s). Unlike the
/// connection timeouts this one cannot be disabled — a peer call with no
/// deadline would couple one node's latency to another's failure, which
/// is the exact coupling the breaker exists to cut.
///
/// # Errors
///
/// Returns a message naming the variable when set but malformed or `off`.
pub fn try_peer_timeout() -> Result<Duration, String> {
    match env_timeout("OCCACHE_PEER_TIMEOUT", Some(DEFAULT_PEER_TIMEOUT))? {
        Some(d) => Ok(d),
        None => Err(
            "OCCACHE_PEER_TIMEOUT must be a positive deadline (peer calls cannot run unbounded)"
                .into(),
        ),
    }
}

/// Parses `OCCACHE_PEER_RETRIES`: how many times a failed peer call is
/// retried (with deterministic backoff) before the node gives up and
/// computes locally. Default 1; `0` disables retries but still falls
/// back to local computation.
///
/// # Errors
///
/// Returns a message naming the variable when set but malformed.
pub fn try_peer_retries() -> Result<usize, String> {
    env_usize("OCCACHE_PEER_RETRIES", DEFAULT_PEER_RETRIES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_is_strict_on_malformed_values() {
        // Uses a variable we control to avoid races with other tests
        // reading the real OCCACHE_* variables.
        std::env::set_var("OCCACHE_TEST_ENV_USIZE", "12abc");
        assert!(env_usize("OCCACHE_TEST_ENV_USIZE", 5).is_err());
        std::env::set_var("OCCACHE_TEST_ENV_USIZE", " 42 ");
        assert_eq!(env_usize("OCCACHE_TEST_ENV_USIZE", 5), Ok(42));
        std::env::remove_var("OCCACHE_TEST_ENV_USIZE");
        assert_eq!(env_usize("OCCACHE_TEST_ENV_USIZE", 5), Ok(5));
        assert_eq!(env_usize_opt("OCCACHE_TEST_ENV_USIZE"), Ok(None));
    }

    #[test]
    fn peer_addr_parsing_is_strict() {
        assert_eq!(
            parse_peer_addr("OCCACHE_PEERS", " 10.0.0.1:7800 "),
            Ok("10.0.0.1:7800".to_string())
        );
        assert!(parse_peer_addr("OCCACHE_PEERS", "no-port").is_err());
        assert!(parse_peer_addr("OCCACHE_PEERS", ":7800").is_err());
        assert!(parse_peer_addr("OCCACHE_PEERS", "host:").is_err());
        assert!(parse_peer_addr("OCCACHE_PEERS", "host:0").is_err());
        assert!(parse_peer_addr("OCCACHE_PEERS", "host:65536").is_err());
        assert!(parse_peer_addr("OCCACHE_PEERS", "host:80x").is_err());
    }

    #[test]
    fn self_addr_must_be_a_listed_peer() {
        // try_self_addr reads OCCACHE_SELF; no other test touches it, so
        // set/remove here races with nothing.
        let peers = vec!["a:1".to_string(), "b:2".to_string()];
        std::env::remove_var("OCCACHE_SELF");
        assert!(try_self_addr(&peers).is_err());
        std::env::set_var("OCCACHE_SELF", "c:3");
        assert!(try_self_addr(&peers).is_err());
        std::env::set_var("OCCACHE_SELF", "bad");
        assert!(try_self_addr(&peers).is_err());
        std::env::set_var("OCCACHE_SELF", "b:2");
        assert_eq!(try_self_addr(&peers), Ok("b:2".to_string()));
        std::env::remove_var("OCCACHE_SELF");
    }

    #[test]
    fn peer_env_vars_parse_strictly() {
        // One test covers all three peer variables so no parallel test
        // observes a transient set_var (tests share the process env).
        assert_eq!(try_peers(), Ok(None));
        assert_eq!(try_peer_timeout(), Ok(DEFAULT_PEER_TIMEOUT));
        assert_eq!(try_peer_retries(), Ok(DEFAULT_PEER_RETRIES));

        std::env::set_var("OCCACHE_PEERS", "a:1,b:2,a:1");
        assert!(try_peers().unwrap_err().contains("twice"));
        std::env::set_var("OCCACHE_PEERS", "a:1,,b:2");
        assert!(try_peers().is_err());
        std::env::set_var("OCCACHE_PEERS", "");
        assert!(try_peers().is_err());
        std::env::set_var("OCCACHE_PEERS", "a:1, b:2");
        assert_eq!(
            try_peers(),
            Ok(Some(vec!["a:1".to_string(), "b:2".to_string()]))
        );
        std::env::remove_var("OCCACHE_PEERS");

        std::env::set_var("OCCACHE_PEER_TIMEOUT", "soon");
        assert!(try_peer_timeout().is_err());
        std::env::set_var("OCCACHE_PEER_TIMEOUT", "off");
        assert!(
            try_peer_timeout().is_err(),
            "peer deadline cannot be disabled"
        );
        std::env::set_var("OCCACHE_PEER_TIMEOUT", "0.5");
        assert_eq!(try_peer_timeout(), Ok(Duration::from_millis(500)));
        std::env::remove_var("OCCACHE_PEER_TIMEOUT");

        std::env::set_var("OCCACHE_PEER_RETRIES", "-1");
        assert!(try_peer_retries().is_err());
        std::env::set_var("OCCACHE_PEER_RETRIES", "3");
        assert_eq!(try_peer_retries(), Ok(3));
        std::env::remove_var("OCCACHE_PEER_RETRIES");
    }

    #[test]
    fn timeout_parsing_covers_off_and_seconds() {
        assert_eq!(parse_timeout("").unwrap(), None);
        assert_eq!(parse_timeout("0").unwrap(), None);
        assert_eq!(parse_timeout("off").unwrap(), None);
        assert_eq!(parse_timeout("OFF").unwrap(), None);
        assert_eq!(
            parse_timeout("2.5").unwrap(),
            Some(Duration::from_millis(2_500))
        );
        assert!(parse_timeout("-1").is_err());
        assert!(parse_timeout("soon").is_err());
        assert!(parse_timeout("inf").is_err());
    }
}
