//! Instrumentation shared by both front-ends: lock-free counters, a
//! fixed-bucket latency histogram, and a snapshot [`Registry`] whose
//! named instruments render to either sink — Prometheus text exposition
//! (the server's `/metrics`) or greppable line-oriented JSON (the batch
//! harness's `RUN_REPORT.json` totals).
//!
//! The registry is a *snapshot*, not a live store: callers read their
//! atomics, assemble the families in display order, and render. That
//! keeps recording on the hot path one relaxed atomic increment with no
//! registry lock, and keeps both renderings byte-deterministic for a
//! given snapshot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::fmt::fmt_f64_exact;

/// A monotonically increasing event counter with relaxed atomics: safe
/// to bump from any worker thread, read for a render snapshot.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram bucket upper bounds in microseconds: powers of four from
/// 64 µs to ~67 s, plus an unbounded overflow bucket. Fixed at compile
/// time so recording is one atomic increment.
const BUCKET_BOUNDS_US: &[u64] = &[
    64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216, 67_108_864,
];

/// A fixed-bucket latency histogram with lock-free recording.
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: (0..=BUCKET_BOUNDS_US.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            total: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let bucket = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// The `q`-quantile in seconds (upper bound of the bucket holding
    /// it): a conservative estimate, monotone in `q`. Zero when empty.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, count) in self.counts.iter().enumerate() {
            seen += count.load(Ordering::Relaxed);
            if seen >= rank {
                let bound_us = BUCKET_BOUNDS_US
                    .get(i)
                    .copied()
                    // Overflow bucket: report the largest finite bound.
                    .unwrap_or(*BUCKET_BOUNDS_US.last().expect("bounds non-empty"));
                return bound_us as f64 / 1e6;
            }
        }
        0.0
    }
}

/// How a sample's value is rendered in the text sinks.
#[derive(Debug, Clone, Copy)]
enum Value {
    /// A whole number (`{}`).
    Int(u128),
    /// A float at fixed millisecond precision (`{:.3}`) — uptimes and
    /// busy-seconds, where sub-millisecond digits are noise.
    Float3(f64),
    /// A float rendered shortest-round-trip ([`fmt_f64_exact`]) —
    /// quantiles and ratios, where the exact bits are the contract.
    FloatExact(f64),
}

impl Value {
    fn render(self) -> String {
        match self {
            Value::Int(v) => format!("{v}"),
            Value::Float3(v) => format!("{v:.3}"),
            Value::FloatExact(v) => fmt_f64_exact(v),
        }
    }
}

/// One sample row of a family: an optional `{label="..."}` suffix plus
/// the value.
#[derive(Debug, Clone)]
struct Sample {
    /// Rendered label set including braces (e.g. `{worker="0"}`), or
    /// empty for an unlabeled sample.
    labels: String,
    value: Value,
}

/// One named instrument family: its metadata (omitted for bare samples
/// such as Prometheus summary `_count` rows) and its samples in order.
#[derive(Debug, Clone)]
struct Family {
    name: String,
    /// `Some((help text, exposition type))` emits `# HELP` / `# TYPE`
    /// header lines in the Prometheus sink; `None` emits samples only.
    meta: Option<(String, &'static str)>,
    samples: Vec<Sample>,
}

/// An ordered snapshot of named instruments, renderable to either sink.
///
/// Families render in insertion order, samples in push order, so a given
/// snapshot produces byte-identical output on every render — both sinks
/// are diffed in CI.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: Vec<Family>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn push(&mut self, name: &str, meta: Option<(String, &'static str)>, sample: Sample) {
        if let Some(family) = self.families.last_mut() {
            if family.name == name {
                family.samples.push(sample);
                return;
            }
        }
        self.families.push(Family {
            name: name.to_string(),
            meta,
            samples: vec![sample],
        });
    }

    /// Adds a counter family with one unlabeled integer sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.push(
            name,
            Some((help.to_string(), "counter")),
            Sample {
                labels: String::new(),
                value: Value::Int(u128::from(value)),
            },
        );
        self
    }

    /// Adds a gauge family with one unlabeled integer sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.push(
            name,
            Some((help.to_string(), "gauge")),
            Sample {
                labels: String::new(),
                value: Value::Int(u128::from(value)),
            },
        );
        self
    }

    /// Adds a gauge family with one unlabeled fixed-precision float
    /// sample (`{:.3}`).
    pub fn gauge_seconds(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.push(
            name,
            Some((help.to_string(), "gauge")),
            Sample {
                labels: String::new(),
                value: Value::Float3(value),
            },
        );
        self
    }

    /// Adds an integer sample with no `# HELP`/`# TYPE` header — the
    /// shape of companion rows like a summary's `_count` or a gauge's
    /// secondary series.
    pub fn bare(&mut self, name: &str, value: u128) -> &mut Self {
        self.push(
            name,
            None,
            Sample {
                labels: String::new(),
                value: Value::Int(value),
            },
        );
        self
    }

    /// Adds a gauge family with one integer sample per label value,
    /// labeled `{key="value"}` in the given order — per-peer state
    /// exposition and any other small labelled set of current values.
    pub fn labeled_gauge(
        &mut self,
        name: &str,
        help: &str,
        key: &str,
        samples: impl IntoIterator<Item = (String, u64)>,
    ) -> &mut Self {
        let mut meta = Some((help.to_string(), "gauge"));
        for (label, value) in samples {
            self.push(
                name,
                meta.take(),
                Sample {
                    labels: format!("{{{key}=\"{label}\"}}"),
                    value: Value::Int(u128::from(value)),
                },
            );
        }
        self
    }

    /// Adds a counter family with one fixed-precision float sample per
    /// label value, labeled `{key="value"}` in the given order.
    pub fn labeled_counter_seconds(
        &mut self,
        name: &str,
        help: &str,
        key: &str,
        samples: impl IntoIterator<Item = (String, f64)>,
    ) -> &mut Self {
        let mut meta = Some((help.to_string(), "counter"));
        for (label, value) in samples {
            self.push(
                name,
                meta.take(),
                Sample {
                    labels: format!("{{{key}=\"{label}\"}}"),
                    value: Value::Float3(value),
                },
            );
        }
        self
    }

    /// Adds a summary family: one shortest-round-trip float sample per
    /// `{quantile="..."}` label. The companion `_count` row is a
    /// separate [`Registry::bare`] family, as in the exposition format.
    pub fn summary(
        &mut self,
        name: &str,
        help: &str,
        quantiles: impl IntoIterator<Item = (String, f64)>,
    ) -> &mut Self {
        let mut meta = Some((help.to_string(), "summary"));
        for (label, value) in quantiles {
            self.push(
                name,
                meta.take(),
                Sample {
                    labels: format!("{{quantile=\"{label}\"}}"),
                    value: Value::FloatExact(value),
                },
            );
        }
        self
    }

    /// Renders the Prometheus text exposition: `# HELP` / `# TYPE`
    /// headers for families carrying metadata, then one
    /// `name{labels} value` row per sample.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        for family in &self.families {
            if let Some((help, kind)) = &family.meta {
                let _ = writeln!(out, "# HELP {} {help}", family.name);
                let _ = writeln!(out, "# TYPE {} {kind}", family.name);
            }
            for sample in &family.samples {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    family.name,
                    sample.labels,
                    sample.value.render()
                );
            }
        }
        out
    }

    /// Renders one flat JSON object, `{"name": value,...}`, taking each
    /// family's first sample. The uniform `"name": value` spacing is the
    /// greppable contract of RUN_REPORT.json (CI matches
    /// `'"timed_out": [1-9]'` without a JSON parser).
    pub fn render_json(&self) -> String {
        let fields: Vec<String> = self
            .families
            .iter()
            .filter_map(|family| {
                let sample = family.samples.first()?;
                Some(format!("\"{}\": {}", family.name, sample.value.render()))
            })
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

// ---------------------------------------------------------------------------
// The strict text-exposition parser: the read side of render_prometheus.
// ---------------------------------------------------------------------------

/// Why a metrics exposition was rejected: the 1-based line number and
/// what was wrong with it. Strictness is the point — `occache-top` and
/// the CI gates consume scrapes through this parser instead of ad-hoc
/// greps, so a malformed exposition is a loud failure, never a silently
/// missed sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for MetricsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "metrics line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for MetricsError {}

/// One parsed sample row: the raw label block (braces included, empty
/// for unlabeled samples) and the value, both as written and as a
/// number.
#[derive(Debug, Clone, PartialEq)]
pub struct TextSample {
    /// The label block exactly as written (e.g. `{peer="127.0.0.1:1"}`),
    /// or empty.
    pub labels: String,
    /// The value exactly as written (re-render reproduces the bytes).
    pub raw_value: String,
    /// The value as a finite number.
    pub value: f64,
}

impl TextSample {
    /// The value of label `key` inside this sample's label block, if
    /// present.
    pub fn label(&self, key: &str) -> Option<&str> {
        let inner = self.labels.strip_prefix('{')?.strip_suffix('}')?;
        for pair in inner.split(',') {
            let (k, v) = pair.split_once('=')?;
            if k == key {
                return v.strip_prefix('"')?.strip_suffix('"');
            }
        }
        None
    }
}

/// One parsed metric family: `# HELP`/`# TYPE` metadata when present
/// (bare companion rows such as a summary's `_count` carry none) and
/// the samples in exposition order.
#[derive(Debug, Clone, PartialEq)]
pub struct TextFamily {
    /// The family name.
    pub name: String,
    /// `Some((help, type))` when the family carried header lines.
    pub meta: Option<(String, String)>,
    /// The sample rows, in order.
    pub samples: Vec<TextSample>,
}

/// A fully parsed text exposition, families in input order. Parsing is
/// lossless: [`Exposition::render`] reproduces the input byte for byte,
/// which the round-trip property test pins for every [`Registry`]
/// output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// The families, in input order.
    pub families: Vec<TextFamily>,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_block(block: &str) -> bool {
    let Some(inner) = block.strip_prefix('{').and_then(|s| s.strip_suffix('}')) else {
        return false;
    };
    if inner.is_empty() {
        return false;
    }
    inner.split(',').all(|pair| {
        let Some((key, value)) = pair.split_once('=') else {
            return false;
        };
        valid_metric_name(key)
            && value.len() >= 2
            && value.starts_with('"')
            && value.ends_with('"')
            && !value[1..value.len() - 1].contains(['"', '\\'])
    })
}

impl Exposition {
    /// Parses a Prometheus text exposition strictly: every line must be
    /// a `# HELP`, a `# TYPE` immediately following its `# HELP`, or a
    /// `name{labels} value` sample with a valid name, a well-formed
    /// label block and a finite value. Anything else — torn lines,
    /// unknown comments, a header without samples — is an error naming
    /// the line.
    ///
    /// # Errors
    ///
    /// A [`MetricsError`] carrying the 1-based line number and reason.
    pub fn parse(text: &str) -> Result<Exposition, MetricsError> {
        let err = |line: usize, reason: &str| MetricsError {
            line,
            reason: reason.to_string(),
        };
        if !text.is_empty() && !text.ends_with('\n') {
            return Err(err(
                text.lines().count(),
                "exposition does not end with a newline (torn scrape?)",
            ));
        }
        let mut families: Vec<TextFamily> = Vec::new();
        // A `# HELP` opens a pending family that must be completed by a
        // `# TYPE` for the same name and then at least one sample.
        let mut pending: Option<(String, String, Option<String>)> = None;
        for (i, line) in text.lines().enumerate() {
            let line_no = i + 1;
            if let Some(rest) = line.strip_prefix("# ") {
                if let Some(help_rest) = rest.strip_prefix("HELP ") {
                    if let Some((name, _, kind)) = &pending {
                        if kind.is_none() {
                            return Err(err(line_no, &format!("HELP {name} has no TYPE line")));
                        }
                        return Err(err(line_no, &format!("family {name} has no samples")));
                    }
                    let (name, help) = help_rest
                        .split_once(' ')
                        .ok_or_else(|| err(line_no, "HELP line without help text"))?;
                    if !valid_metric_name(name) {
                        return Err(err(line_no, &format!("invalid metric name {name:?}")));
                    }
                    pending = Some((name.to_string(), help.to_string(), None));
                } else if let Some(type_rest) = rest.strip_prefix("TYPE ") {
                    let (name, kind) = type_rest
                        .split_once(' ')
                        .ok_or_else(|| err(line_no, "TYPE line without a type"))?;
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "summary" | "histogram" | "untyped"
                    ) {
                        return Err(err(line_no, &format!("unknown metric type {kind:?}")));
                    }
                    match &mut pending {
                        Some((pname, _, pkind @ None)) if pname == name => {
                            *pkind = Some(kind.to_string());
                        }
                        _ => {
                            return Err(err(
                                line_no,
                                &format!("TYPE {name} does not follow its HELP line"),
                            ));
                        }
                    }
                } else {
                    return Err(err(line_no, "comment is neither # HELP nor # TYPE"));
                }
                continue;
            }
            // A sample row: name, optional label block, single space,
            // value. The label block is delimited by its closing brace
            // (label values may contain spaces), so the split point is
            // structural, not "the last space on the line".
            let (name, labels, raw_value) = match line.find('{') {
                Some(open) => {
                    let close = line
                        .rfind('}')
                        .filter(|&c| c > open)
                        .ok_or_else(|| err(line_no, "unterminated label block"))?;
                    let block = &line[open..=close];
                    if !valid_label_block(block) {
                        return Err(err(line_no, &format!("malformed label block {block:?}")));
                    }
                    let value = line[close + 1..]
                        .strip_prefix(' ')
                        .ok_or_else(|| err(line_no, "sample line without a value"))?;
                    (&line[..open], block.to_string(), value)
                }
                None => {
                    let (name, value) = line
                        .rsplit_once(' ')
                        .ok_or_else(|| err(line_no, "sample line without a value"))?;
                    (name, String::new(), value)
                }
            };
            if !valid_metric_name(name) {
                return Err(err(line_no, &format!("invalid metric name {name:?}")));
            }
            let value: f64 = raw_value
                .parse()
                .ok()
                .filter(|v: &f64| v.is_finite())
                .ok_or_else(|| err(line_no, &format!("invalid sample value {raw_value:?}")))?;
            let sample = TextSample {
                labels,
                raw_value: raw_value.to_string(),
                value,
            };
            if let Some((pname, help, kind)) = pending.take() {
                let kind =
                    kind.ok_or_else(|| err(line_no, &format!("HELP {pname} has no TYPE line")))?;
                if pname != name {
                    return Err(err(
                        line_no,
                        &format!("sample {name} under headers for {pname}"),
                    ));
                }
                families.push(TextFamily {
                    name: name.to_string(),
                    meta: Some((help, kind)),
                    samples: vec![sample],
                });
            } else if let Some(family) = families.last_mut().filter(|f| f.name == name) {
                family.samples.push(sample);
            } else {
                families.push(TextFamily {
                    name: name.to_string(),
                    meta: None,
                    samples: vec![sample],
                });
            }
        }
        if let Some((name, _, _)) = pending {
            let line = text.lines().count();
            return Err(err(line, &format!("family {name} has no samples")));
        }
        Ok(Exposition { families })
    }

    /// Re-renders the exposition. For any text accepted by
    /// [`Exposition::parse`] this reproduces the input exactly.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        for family in &self.families {
            if let Some((help, kind)) = &family.meta {
                let _ = writeln!(out, "# HELP {} {help}", family.name);
                let _ = writeln!(out, "# TYPE {} {kind}", family.name);
            }
            for sample in &family.samples {
                let _ = writeln!(out, "{}{} {}", family.name, sample.labels, sample.raw_value);
            }
        }
        out
    }

    /// The named family, if present.
    pub fn family(&self, name: &str) -> Option<&TextFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    /// The first sample value of the named family — the common case for
    /// unlabeled counters and gauges.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.family(name)?.samples.first().map(|s| s.value)
    }

    /// The value of the sample whose label block contains `key="label"`
    /// in the named family (quantile and per-peer lookups).
    pub fn labeled(&self, name: &str, key: &str, label: &str) -> Option<f64> {
        self.family(name)?
            .samples
            .iter()
            .find(|s| s.label(key) == Some(label))
            .map(|s| s.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_monotone_and_bucketed() {
        let h = Histogram::default();
        for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 500] {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile_seconds(0.5);
        let p99 = h.quantile_seconds(0.99);
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        // 1 ms lands in the 1024 µs bucket; 500 ms in the 1.048576 s one.
        assert!((p50 - 0.001024).abs() < 1e-9, "{p50}");
        assert!((p99 - 1.048576).abs() < 1e-9, "{p99}");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_seconds(0.5), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn counter_accumulates_relaxed_increments() {
        let c = Counter::default();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn prometheus_sink_renders_exact_exposition_rows() {
        let mut reg = Registry::new();
        reg.counter("occache_requests_total", "Requests accepted.", 3)
            .gauge("occache_workers", "Scheduler worker threads.", 2)
            .bare("occache_workers_busy", 1)
            .gauge_seconds("occache_uptime_seconds", "Seconds since start.", 6.5)
            .labeled_counter_seconds(
                "occache_worker_busy_seconds",
                "Cumulative evaluation time per worker.",
                "worker",
                [(String::from("0"), 1.0), (String::from("1"), 2.0)],
            )
            .summary(
                "occache_request_seconds",
                "Latency quantiles.",
                [
                    (String::from("0.5"), 0.001024),
                    (String::from("0.99"), 1.048576),
                ],
            )
            .bare("occache_request_seconds_count", 10);
        let text = reg.render_prometheus();
        let expected = "\
# HELP occache_requests_total Requests accepted.
# TYPE occache_requests_total counter
occache_requests_total 3
# HELP occache_workers Scheduler worker threads.
# TYPE occache_workers gauge
occache_workers 2
occache_workers_busy 1
# HELP occache_uptime_seconds Seconds since start.
# TYPE occache_uptime_seconds gauge
occache_uptime_seconds 6.500
# HELP occache_worker_busy_seconds Cumulative evaluation time per worker.
# TYPE occache_worker_busy_seconds counter
occache_worker_busy_seconds{worker=\"0\"} 1.000
occache_worker_busy_seconds{worker=\"1\"} 2.000
# HELP occache_request_seconds Latency quantiles.
# TYPE occache_request_seconds summary
occache_request_seconds{quantile=\"0.5\"} 0.001024
occache_request_seconds{quantile=\"0.99\"} 1.048576
occache_request_seconds_count 10
";
        assert_eq!(text, expected);
    }

    #[test]
    fn parser_round_trips_a_full_exposition() {
        let mut reg = Registry::new();
        reg.counter("occache_requests_total", "Requests accepted.", 3)
            .gauge_seconds("occache_uptime_seconds", "Seconds since start.", 6.5)
            .bare("occache_workers_busy", 1)
            .labeled_gauge(
                "occache_peer_state",
                "Per-peer breaker state.",
                "peer",
                [("127.0.0.1:7801".to_string(), 2)],
            )
            .summary(
                "occache_request_seconds",
                "Latency quantiles.",
                [("0.5".to_string(), 0.001024), ("0.99".to_string(), 1.5)],
            )
            .bare("occache_request_seconds_count", 10);
        let text = reg.render_prometheus();
        let parsed = Exposition::parse(&text).expect("render output must parse");
        assert_eq!(parsed.render(), text, "lossless round trip");
        assert_eq!(parsed.value("occache_requests_total"), Some(3.0));
        assert_eq!(parsed.value("occache_uptime_seconds"), Some(6.5));
        assert_eq!(
            parsed.labeled("occache_peer_state", "peer", "127.0.0.1:7801"),
            Some(2.0)
        );
        assert_eq!(
            parsed.labeled("occache_request_seconds", "quantile", "0.99"),
            Some(1.5)
        );
        assert_eq!(parsed.value("occache_request_seconds_count"), Some(10.0));
        assert_eq!(parsed.value("no_such_family"), None);
    }

    #[test]
    fn parser_rejects_malformed_expositions_by_line() {
        let cases: &[(&str, usize)] = &[
            ("occache_x\n", 1),                                       // no value
            ("occache_x nan\n", 1),                                   // non-finite
            ("occache_x 1", 1),                                       // torn: no newline
            ("# HELP occache_x help\noccache_x 1\n", 2),              // HELP without TYPE
            ("# HELP occache_x help\n# TYPE occache_y counter\n", 2), // name mismatch
            ("# TYPE occache_x counter\noccache_x 1\n", 1),           // TYPE without HELP
            ("# HELP occache_x h\n# TYPE occache_x counter\n", 2),    // no samples
            ("# bogus comment\n", 1),
            ("occache_x{peer=unquoted} 1\n", 1),
            ("occache_x{peer=\"a\" 1\n", 1),
            ("1bad_name 2\n", 1),
        ];
        for (text, line) in cases {
            let e = Exposition::parse(text).expect_err(text);
            assert_eq!(e.line, *line, "{text:?}: {e}");
        }
        assert!(Exposition::parse("")
            .expect("empty is valid")
            .families
            .is_empty());
    }

    #[test]
    fn json_sink_renders_uniform_greppable_fields() {
        let mut reg = Registry::new();
        reg.bare("phases", 2)
            .bare("computed", 20)
            .bare("timed_out", 1);
        assert_eq!(
            reg.render_json(),
            "{\"phases\": 2,\"computed\": 20,\"timed_out\": 1}"
        );
    }
}
