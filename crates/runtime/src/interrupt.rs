//! Cooperative SIGINT/SIGTERM handling for long-running binaries.
//!
//! Batch bins (`all`, `table7`, `occache-sweep`, …) and the serving
//! layer install a process-wide flag handler once via [`install`]; work
//! loops poll [`requested`] at unit boundaries and wind down instead of
//! dying mid-write. The journal writer then seals its current line, the
//! run report is written with an `interrupted` marker, and the process
//! exits with [`EXIT_INTERRUPTED`] — so a Ctrl-C during an overnight
//! sweep leaves a resumable checkpoint, not a torn artifact.
//!
//! The handler itself only performs an atomic store, which is
//! async-signal-safe; everything else happens on normal threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

/// POSIX signal number for SIGINT (Ctrl-C).
pub const SIGINT: i32 = 2;

/// POSIX signal number for SIGTERM.
pub const SIGTERM: i32 = 15;

/// Conventional exit code for a run stopped by SIGINT (128 + 2). Bins
/// that wound down cleanly after an interrupt exit with this so shells
/// and CI can tell "interrupted but sealed" from both success and crash.
pub const EXIT_INTERRUPTED: u8 = 130;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

#[cfg(unix)]
mod imp {
    use super::{INTERRUPTED, SIGINT, SIGTERM};
    use std::sync::atomic::Ordering;

    /// The C-ABI handler type `signal(2)` expects.
    type SigHandler = extern "C" fn(i32);

    // std already links the platform C library on unix targets, so the
    // POSIX `signal` entry point is reachable without any crate
    // dependency. The return value (the previous handler) is a
    // pointer-sized opaque value we never inspect.
    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // An atomic store is on the async-signal-safe list; nothing else
        // (no allocation, no locks, no I/O) may happen here.
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install_handlers() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-unix builds keep the default signal disposition; [`super::requested`]
    /// then only reflects [`super::trigger`] (tests and embedders).
    pub(super) fn install_handlers() {}
}

/// Installs the SIGINT/SIGTERM flag handlers (idempotent). Call once
/// near the top of `main`, before any long-running work starts.
pub fn install() {
    INSTALL.call_once(imp::install_handlers);
}

/// Whether an interrupt has been requested (by a signal or [`trigger`]).
/// Work loops poll this at unit boundaries and stop claiming new work.
pub fn requested() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Raises the interrupt flag programmatically — the serving layer's
/// shutdown endpoint and tests use this; signals use the same flag.
pub fn trigger() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

/// Clears the flag. Test-only in spirit: production bins exit after an
/// interrupt rather than resuming.
pub fn clear() {
    INTERRUPTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        clear();
        assert!(!requested());
        trigger();
        assert!(requested());
        clear();
        assert!(!requested());
    }

    #[test]
    fn install_is_idempotent() {
        install();
        install();
    }
}
