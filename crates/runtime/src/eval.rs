//! Design-point evaluation: the direct simulator path, the one-pass
//! engine path, the slice planner, and structured point faults.
//!
//! Evaluation averages ratios across traces exactly as the paper does
//! ("Multiple-trace miss and traffic ratios are the unweighted average
//! of the miss and traffic ratios of individual runs", §3.3). Sweeps do
//! not simulate every point independently: [`plan_units`] groups a grid
//! into one-pass-compatible slices per replacement policy (demand
//! fetch, write-through, power-of-two sets — geometry may differ
//! freely per member) and [`evaluate_slice`] runs each through the
//! matching [`occache_core::multisim`] engine (LRU, FIFO or Random),
//! which yields every cache size's metrics from a single trace pass —
//! bit-identical to [`occache_core::simulate`]. Only points no engine
//! can express (prefetch/load-forward, copy-back, non-power-of-two
//! sets) fall back to the direct simulator, and
//! `OCCACHE_NO_MULTISIM=<list>` forces the direct path for the listed
//! engines — or all of them with `OCCACHE_NO_MULTISIM=all` — (used by
//! equivalence tests and timing comparisons; see
//! [`crate::config::multisim_disabled`]).

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

use occache_core::{
    simulate, simulate_many, simulate_many_pair, BusModel, CacheConfig, EngineKind, Metrics,
    MAX_MULTISIM_CONFIGS,
};
use occache_trace::{MemRef, PackedTrace};

/// A named reference stream, reusable across configurations.
///
/// Two backings exist. [`Trace::new`] fully materialises the stream
/// into a shared [`PackedTrace`] (9 bytes per reference instead of 16),
/// so cloning a `Trace` — as the memoizing workbench and the sweep
/// workers do — bumps a reference count rather than copying a
/// million-entry stream. [`Trace::streamed`] instead stores a
/// replayable *factory*: every [`Trace::iter`] call regenerates the
/// stream on the fly, so evaluation feeds references straight from the
/// source (e.g. a workload generator) into the simulators without a
/// packed copy ever existing. Both backings yield identical references
/// in identical order for the same underlying stream, so journal keys,
/// fingerprints and metrics do not depend on which one a sweep used.
#[derive(Clone)]
pub struct Trace {
    /// Trace name (as in the paper's workload tables).
    pub name: String,
    source: TraceBacking,
}

#[derive(Clone)]
enum TraceBacking {
    /// Fully materialised, shared by reference across workers.
    Packed(Arc<PackedTrace>),
    /// Regenerated on every iteration from a replayable factory.
    Streamed {
        len: usize,
        make: Arc<dyn Fn() -> Box<dyn Iterator<Item = MemRef> + Send> + Send + Sync>,
    },
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("Trace");
        s.field("name", &self.name).field("len", &self.len());
        match &self.source {
            TraceBacking::Packed(_) => s.field("backing", &"packed"),
            TraceBacking::Streamed { .. } => s.field("backing", &"streamed"),
        };
        s.finish()
    }
}

impl Trace {
    /// Packs a reference stream under a name.
    pub fn new(name: impl Into<String>, refs: impl IntoIterator<Item = MemRef>) -> Self {
        Trace {
            name: name.into(),
            source: TraceBacking::Packed(Arc::new(refs.into_iter().collect())),
        }
    }

    /// A streamed trace: `make` must return a fresh iterator replaying
    /// the *same* `len`-reference stream on every call (a deterministic
    /// generator reseeded identically). Evaluation then consumes the
    /// stream chunk-by-chunk without materialising it; iteration is
    /// truncated to `len` so the declared length is authoritative.
    pub fn streamed<F, I>(name: impl Into<String>, len: usize, make: F) -> Self
    where
        F: Fn() -> I + Send + Sync + 'static,
        I: Iterator<Item = MemRef> + Send + 'static,
    {
        Trace {
            name: name.into(),
            source: TraceBacking::Streamed {
                len,
                make: Arc::new(move || Box::new(make())),
            },
        }
    }

    /// Number of references in the stream.
    pub fn len(&self) -> usize {
        match &self.source {
            TraceBacking::Packed(refs) => refs.len(),
            TraceBacking::Streamed { len, .. } => *len,
        }
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this trace regenerates on iteration instead of replaying
    /// a packed copy.
    pub fn is_streamed(&self) -> bool {
        matches!(self.source, TraceBacking::Streamed { .. })
    }

    /// Iterates the reference stream (decoding the packed copy, or
    /// regenerating via the factory).
    pub fn iter(&self) -> TraceIter<'_> {
        match &self.source {
            TraceBacking::Packed(refs) => TraceIter::Packed(refs.iter()),
            TraceBacking::Streamed { len, make } => TraceIter::Streamed(make().take(*len)),
        }
    }

    /// Whether two traces share the same backing store (packed buffer or
    /// stream factory) — i.e. cloning one of them produced the other.
    pub fn shares_backing(&self, other: &Trace) -> bool {
        match (&self.source, &other.source) {
            (TraceBacking::Packed(a), TraceBacking::Packed(b)) => Arc::ptr_eq(a, b),
            (TraceBacking::Streamed { make: a, .. }, TraceBacking::Streamed { make: b, .. }) => {
                Arc::ptr_eq(a, b)
            }
            _ => false,
        }
    }
}

/// Iterator over a [`Trace`]'s references, whichever backing it has.
pub enum TraceIter<'a> {
    /// Decoding a packed trace in place.
    Packed(occache_trace::packed::PackedIter<'a>),
    /// Draining a freshly regenerated stream.
    Streamed(std::iter::Take<Box<dyn Iterator<Item = MemRef> + Send>>),
}

impl Iterator for TraceIter<'_> {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        match self {
            TraceIter::Packed(it) => it.next(),
            TraceIter::Streamed(it) => it.next(),
        }
    }
}

/// Averaged results for one cache design point over a trace set.
#[derive(Debug, Clone, Copy)]
pub struct DesignPoint {
    /// The configuration evaluated.
    pub config: CacheConfig,
    /// Unweighted mean miss ratio across traces.
    pub miss_ratio: f64,
    /// Unweighted mean traffic ratio across traces.
    pub traffic_ratio: f64,
    /// Unweighted mean nibble-mode scaled traffic ratio (§4.3).
    pub nibble_traffic_ratio: f64,
    /// Mean fraction of redundant sub-block loads (load-forward only).
    pub redundant_load_fraction: f64,
    /// Gross cache size in bytes.
    pub gross_size: u64,
}

/// Evaluates one configuration against every trace, averaging the ratios.
///
/// `warmup` references at the head of each trace prime the cache without
/// being counted (the paper's warm-start discipline; pass 0 for cold).
pub fn evaluate_point(config: CacheConfig, traces: &[Trace], warmup: usize) -> DesignPoint {
    let nibble = BusModel::paper_nibble();
    let mut miss = 0.0;
    let mut traffic = 0.0;
    let mut scaled = 0.0;
    let mut redundant = 0.0;
    for trace in traces {
        let metrics: Metrics = simulate(config, trace.iter(), warmup);
        miss += metrics.miss_ratio();
        traffic += metrics.traffic_ratio();
        scaled += metrics.scaled_traffic_ratio(nibble);
        if metrics.sub_loads() > 0 {
            redundant += metrics.redundant_sub_loads() as f64 / metrics.sub_loads() as f64;
        }
    }
    let n = traces.len().max(1) as f64;
    DesignPoint {
        config,
        miss_ratio: miss / n,
        traffic_ratio: traffic / n,
        nibble_traffic_ratio: scaled / n,
        redundant_load_fraction: redundant / n,
        gross_size: config.gross_size(),
    }
}

/// Evaluates a one-pass-compatible slice of configurations with a single
/// engine pass per trace, averaging exactly as [`evaluate_point`] does.
///
/// The accumulation order per configuration is identical to the per-point
/// path (outer loop over traces, then the division by the trace count), so
/// the resulting floats are bit-identical, not merely close.
pub fn evaluate_slice(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
) -> Vec<DesignPoint> {
    let nibble = BusModel::paper_nibble();
    let mut miss = vec![0.0; configs.len()];
    let mut traffic = vec![0.0; configs.len()];
    let mut scaled = vec![0.0; configs.len()];
    let mut redundant = vec![0.0; configs.len()];
    let mut fold = |all: &[Metrics]| {
        for (i, metrics) in all.iter().enumerate() {
            miss[i] += metrics.miss_ratio();
            traffic[i] += metrics.traffic_ratio();
            scaled[i] += metrics.scaled_traffic_ratio(nibble);
            if metrics.sub_loads() > 0 {
                redundant[i] += metrics.redundant_sub_loads() as f64 / metrics.sub_loads() as f64;
            }
        }
    };
    // Traces go through the engine two at a time: the paired run
    // interleaves two independent engine passes to overlap their
    // dependency chains (see `simulate_many_pair`), and folding the
    // pair's metrics in trace order keeps the float accumulation
    // sequence — and therefore every ratio — bit-identical to the
    // one-trace-at-a-time loop.
    let mut chunks = traces.chunks_exact(2);
    for pair in chunks.by_ref() {
        let (first, second) = simulate_many_pair(configs, pair[0].iter(), pair[1].iter(), warmup)
            .expect("sweep planner grouped an engine-incompatible slice");
        fold(&first);
        fold(&second);
    }
    for trace in chunks.remainder() {
        let all = simulate_many(configs, trace.iter(), warmup)
            .expect("sweep planner grouped an engine-incompatible slice");
        fold(&all);
    }
    let n = traces.len().max(1) as f64;
    configs
        .iter()
        .enumerate()
        .map(|(i, &config)| DesignPoint {
            config,
            miss_ratio: miss[i] / n,
            traffic_ratio: traffic[i] / n,
            nibble_traffic_ratio: scaled[i] / n,
            redundant_load_fraction: redundant[i] / n,
            gross_size: config.gross_size(),
        })
        .collect()
}

/// One schedulable unit of a sliced sweep: a group of config indices that
/// share an engine pass, or a single config that needs the direct
/// simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepUnit {
    /// A slice of config-grid indices, one-pass-compatible with each
    /// other, bound for one policy's engine.
    Engine {
        /// Which one-pass engine runs this slice.
        kind: EngineKind,
        /// Indices into the config grid.
        members: Vec<usize>,
    },
    /// Index of a config no engine can express.
    Direct(usize),
}

/// Groups a config grid into one-pass-compatible slices, one slice
/// family per replacement policy.
///
/// Every engine-eligible config (see [`EngineKind::for_config`]) joins
/// its policy's shared slice in grid order — net size, block size,
/// sub-block size, word size and associativity may all differ, the
/// engine tracks those per residency class and per size — chunked at
/// [`MAX_MULTISIM_CONFIGS`]; everything else becomes a direct unit. For
/// the paper's Table 1/Table 7 grids this means the whole grid rides a
/// single pass per trace regardless of the policy axis. Deterministic
/// for a given grid, and every input index appears in exactly one unit:
/// direct units in grid order first, then engine slices in
/// [`EngineKind::ALL`] order.
pub fn plan_units(configs: &[CacheConfig]) -> Vec<SweepUnit> {
    plan_units_disabling(configs, crate::config::DisabledEngines::NONE)
}

/// [`plan_units`] with some engines forced off: their configs route to
/// direct units instead. This is the hook behind the
/// `OCCACHE_NO_MULTISIM` escape hatch (see
/// [`crate::config::multisim_disabled`]).
pub fn plan_units_disabling(
    configs: &[CacheConfig],
    disabled: crate::config::DisabledEngines,
) -> Vec<SweepUnit> {
    let mut units = Vec::new();
    let mut members: [Vec<usize>; EngineKind::ALL.len()] = Default::default();
    for (i, config) in configs.iter().enumerate() {
        match EngineKind::for_config(config) {
            Some(kind) if !disabled.contains(kind) => members[kind.index()].push(i),
            _ => units.push(SweepUnit::Direct(i)),
        }
    }
    for kind in EngineKind::ALL {
        for chunk in members[kind.index()].chunks(MAX_MULTISIM_CONFIGS) {
            units.push(SweepUnit::Engine {
                kind,
                members: chunk.to_vec(),
            });
        }
    }
    units
}

/// Why a design point failed to produce a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointFault {
    /// The evaluation panicked (simulator bug or injected fault).
    Panic,
    /// The evaluation exceeded the supervisor's wall-clock deadline.
    Timeout,
    /// The evaluation produced a non-finite metric (NaN or infinity),
    /// which must never reach a journal or an artifact.
    NonFinite,
    /// The point failed in enough earlier runs that the journal
    /// quarantined it; it is skipped instead of being retried forever.
    Quarantined,
    /// A sweep worker thread died outside per-point isolation.
    WorkerLoss,
    /// The run was interrupted (SIGINT/SIGTERM) before this point was
    /// claimed by a worker; the point was never evaluated and is *not*
    /// tombstoned, so a resumed run picks it up cleanly.
    Interrupted,
}

impl std::fmt::Display for PointFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PointFault::Panic => "panic",
            PointFault::Timeout => "timeout",
            PointFault::NonFinite => "non-finite",
            PointFault::Quarantined => "quarantined",
            PointFault::WorkerLoss => "worker-loss",
            PointFault::Interrupted => "interrupted",
        })
    }
}

/// A design point whose evaluation failed (panic, deadline overrun,
/// poisoned metrics, or a journal quarantine). The sweep records the
/// failure and carries on with the remaining points.
#[derive(Debug, Clone)]
pub struct PointError {
    /// The configuration that failed.
    pub config: CacheConfig,
    /// The failure class (drives retry/quarantine policy and reporting).
    pub fault: PointFault,
    /// Human-readable detail (panic payload, deadline, field name, ...).
    pub message: String,
}

impl PointError {
    /// A panicking evaluation, with the rendered payload.
    pub fn panicked(config: CacheConfig, message: impl Into<String>) -> Self {
        PointError {
            config,
            fault: PointFault::Panic,
            message: message.into(),
        }
    }

    /// An evaluation abandoned at its wall-clock deadline.
    pub fn timed_out(config: CacheConfig, deadline: std::time::Duration) -> Self {
        PointError {
            config,
            fault: PointFault::Timeout,
            message: format!(
                "exceeded the {:.1}s point deadline (OCCACHE_POINT_TIMEOUT); evaluation abandoned",
                deadline.as_secs_f64()
            ),
        }
    }

    /// An evaluation that produced a non-finite metric.
    pub fn non_finite(config: CacheConfig, field: &str) -> Self {
        PointError {
            config,
            fault: PointFault::NonFinite,
            message: format!("{field} is not finite; the point was rejected, not journalled"),
        }
    }

    /// A point skipped because the journal quarantined it.
    pub fn quarantined(config: CacheConfig, failures: u32) -> Self {
        PointError {
            config,
            fault: PointFault::Quarantined,
            message: format!(
                "quarantined after {failures} failed run(s); pass --fresh to retry it"
            ),
        }
    }

    /// A worker thread dying outside per-point isolation.
    pub fn worker_loss(config: CacheConfig, message: impl Into<String>) -> Self {
        PointError {
            config,
            fault: PointFault::WorkerLoss,
            message: message.into(),
        }
    }

    /// A point left unevaluated because the run was interrupted.
    pub fn interrupted(config: CacheConfig) -> Self {
        PointError {
            config,
            fault: PointFault::Interrupted,
            message: "run interrupted (SIGINT/SIGTERM) before this point was evaluated; \
                      rerun to resume"
                .into(),
        }
    }
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: [{}] {}", self.config, self.fault, self.message)
    }
}

/// Renders a panic payload as text (panics carry `&str` or `String`
/// payloads in practice; anything else is reported opaquely).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Evaluates one configuration with panic containment: a panic inside
/// `eval` becomes an `Err(PointError)` instead of unwinding the sweep.
fn evaluate_contained<F>(
    config: CacheConfig,
    traces: &[Trace],
    warmup: usize,
    eval: &F,
) -> Result<DesignPoint, PointError>
where
    F: Fn(CacheConfig, &[Trace], usize) -> DesignPoint,
{
    panic::catch_unwind(AssertUnwindSafe(|| eval(config, traces, warmup)))
        .map_err(|payload| PointError::panicked(config, panic_message(payload)))
}

/// Fault-isolated parallel sweep returning one result per config, in
/// input order. The building block under the isolated-sweep entry points
/// and the checkpointed sweeps, which need the per-index mapping.
pub fn evaluate_results_with<F>(
    configs: &[CacheConfig],
    traces: &[Trace],
    warmup: usize,
    eval: F,
) -> Vec<Result<DesignPoint, PointError>>
where
    F: Fn(CacheConfig, &[Trace], usize) -> DesignPoint + Sync,
{
    let workers = pool_workers(configs.len());
    let chunk = configs.len().div_ceil(workers.max(1)).max(1);
    let mut slots: Vec<Option<Result<DesignPoint, PointError>>> = vec![None; configs.len()];
    let eval = &eval;
    thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, block) in configs.chunks(chunk).enumerate() {
            handles.push((
                i * chunk,
                block,
                scope.spawn(move || {
                    block
                        .iter()
                        .map(|&c| evaluate_contained(c, traces, warmup, eval))
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (start, block, h) in handles {
            match h.join() {
                Ok(results) => {
                    for (j, r) in results.into_iter().enumerate() {
                        slots[start + j] = Some(r);
                    }
                }
                // With per-point containment a worker should never die, but
                // if one does, name every config it was carrying rather
                // than poisoning the whole sweep.
                Err(payload) => {
                    let message = format!(
                        "sweep worker thread died outside point isolation: {}",
                        panic_message(payload)
                    );
                    for (j, &c) in block.iter().enumerate() {
                        slots[start + j] = Some(Err(PointError::worker_loss(c, message.clone())));
                    }
                }
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk filled its slots"))
        .collect()
}

/// The worker count a sweep pool should use for `units` schedulable
/// units: the `OCCACHE_JOBS` override when set (malformed values fall
/// back silently — bins validate via [`crate::config::try_jobs`] at
/// startup), otherwise the hardware parallelism, never more workers than
/// units and never zero.
pub fn pool_workers(units: usize) -> usize {
    let hardware = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    crate::config::try_jobs()
        .unwrap_or(None)
        .unwrap_or(hardware)
        .min(units.max(1))
}

/// Worker count for slice-level sweep execution: `OCCACHE_SLICE_THREADS`
/// when set (so an operator can pin sweep concurrency without resizing
/// the serving pools), otherwise [`pool_workers`]'s `OCCACHE_JOBS` /
/// hardware-parallelism fallback; always capped at the unit count.
/// Binaries validate the variable strictly at startup via
/// [`crate::config::try_slice_threads`]; by the time a pool is being
/// sized, a malformed value falls back to the default rather than
/// aborting mid-sweep.
pub fn slice_workers(units: usize) -> usize {
    match crate::config::try_slice_threads().unwrap_or(None) {
        Some(n) => n.min(units.max(1)),
        None => pool_workers(units),
    }
}
