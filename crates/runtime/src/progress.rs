//! The live progress feed: `results/.checkpoint/PROGRESS.json`.
//!
//! Long sweeps should be observable while they run, not only after
//! RUN_REPORT.json lands. The supervised executor path writes one
//! [`ProgressSnapshot`] — a single sealed, checksummed JSON line, the
//! same armor the checkpoint journal wears — atomically (same-directory
//! temp file + rename) every [`ProgressWriter`] flush interval, and
//! seals it on phase end or interrupt. A dashboard tailing the file
//! therefore never sees a half-written report: a read either yields a
//! checksum-verified snapshot or nothing.
//!
//! Record format (v2):
//! `{"v":2,"artifact":"<name>","total":T,"computed":C,"restored":R,
//! "failed":F,"timed_out":O,"quarantined":Q,"retries":E,
//! "engine_lru":L,"engine_fifo":G,"engine_random":N,"direct":D,
//! "elapsed_ms":M,"sealed":B,"interrupted":I,
//! "sum":"<fnv1a(body) as 016x>"}`. The four engine columns split the
//! computed points by which evaluation path produced them — the three
//! one-pass slice engines (see `occache_core::SliceEngine`) and the
//! per-config direct simulator fallback — so a dashboard can show *how*
//! a sweep is running, not just how far along it is. v1 readers reject
//! v2 records (and vice versa) via the version field; the feed is
//! ephemeral per phase, so no migration is needed.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::keys::fnv1a;

/// The progress file name under a results directory's `.checkpoint/`.
pub const PROGRESS_FILE: &str = "PROGRESS.json";

/// The progress schema version this build reads and writes.
pub const PROGRESS_VERSION: u32 = 2;

/// The progress-feed path for a results directory.
pub fn progress_path(dir: &Path) -> PathBuf {
    dir.join(".checkpoint").join(PROGRESS_FILE)
}

/// A point-in-time accounting of one sweep phase, as written to (and
/// parsed back from) the progress feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// The artifact (journal) name of the running phase.
    pub artifact: String,
    /// Design points the phase set out to produce.
    pub total: usize,
    /// Points computed so far in this run.
    pub computed: usize,
    /// Points restored from the checkpoint journal at phase start.
    pub restored: usize,
    /// Points failed so far (all classes).
    pub failed: usize,
    /// Failures that were watchdog deadline overruns.
    pub timed_out: usize,
    /// Points skipped because the journal quarantined them.
    pub quarantined: usize,
    /// Supervisor retry attempts so far.
    pub retries: usize,
    /// Computed points that ran on a one-pass slice engine, indexed by
    /// `occache_core::EngineKind::index()` (LRU, FIFO, Random).
    pub engine_points: [usize; 3],
    /// Computed points that fell back to the direct per-config
    /// simulator (unsupported geometry/feature, or containment re-run).
    pub direct_points: usize,
    /// Wall-clock since phase start, milliseconds.
    pub elapsed_ms: u128,
    /// True once the phase ended (normally or by interrupt) and this
    /// snapshot is final.
    pub sealed: bool,
    /// True when the phase was cut short by SIGINT/SIGTERM.
    pub interrupted: bool,
}

impl ProgressSnapshot {
    /// Points still outstanding (never underflows).
    pub fn remaining(&self) -> usize {
        self.total
            .saturating_sub(self.computed + self.restored + self.failed + self.quarantined)
    }

    /// Estimated milliseconds to completion, from the observed
    /// point-rate of this run. `None` until at least one point has been
    /// computed (no rate to extrapolate) or once the phase is sealed.
    pub fn eta_ms(&self) -> Option<u128> {
        if self.sealed || self.computed == 0 || self.elapsed_ms == 0 {
            return None;
        }
        let remaining = self.remaining();
        if remaining == 0 {
            return Some(0);
        }
        Some(self.elapsed_ms * remaining as u128 / self.computed as u128)
    }

    /// Renders the sealed single-line record, checksum included.
    pub fn render(&self) -> String {
        debug_assert!(
            !self.artifact.contains(['"', ',', '\\']),
            "artifact names are plain identifiers"
        );
        let body = format!(
            "\"v\":{PROGRESS_VERSION},\"artifact\":\"{}\",\"total\":{},\"computed\":{},\
             \"restored\":{},\"failed\":{},\"timed_out\":{},\"quarantined\":{},\
             \"retries\":{},\"engine_lru\":{},\"engine_fifo\":{},\"engine_random\":{},\
             \"direct\":{},\"elapsed_ms\":{},\"sealed\":{},\"interrupted\":{}",
            self.artifact,
            self.total,
            self.computed,
            self.restored,
            self.failed,
            self.timed_out,
            self.quarantined,
            self.retries,
            self.engine_points[0],
            self.engine_points[1],
            self.engine_points[2],
            self.direct_points,
            self.elapsed_ms,
            self.sealed,
            self.interrupted,
        );
        format!("{{{body},\"sum\":\"{:016x}\"}}\n", fnv1a(body.as_bytes()))
    }
}

/// Parses one progress record. `None` for anything that is not a
/// complete, checksum-verified v2 record — a torn prefix, a flipped
/// byte, a stale-version line, a foreign file — so a reader can never
/// mis-attribute counts.
pub fn parse_progress(text: &str) -> Option<ProgressSnapshot> {
    let trimmed = text.trim();
    let inner = trimmed.strip_prefix('{')?.strip_suffix('}')?;
    let (body, sum_part) = inner.rsplit_once(",\"sum\":\"")?;
    let sum = u64::from_str_radix(sum_part.strip_suffix('"')?, 16).ok()?;
    if fnv1a(body.as_bytes()) != sum {
        return None;
    }
    let mut version = None;
    let mut artifact = None;
    let mut fields = [None::<usize>; 11];
    let mut elapsed_ms = None;
    let mut sealed = None;
    let mut interrupted = None;
    for field in body.split(',') {
        let (name, value) = field.split_once(':')?;
        let name = name.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value = value.trim();
        match name {
            "v" => version = Some(value.parse::<u32>().ok()?),
            "artifact" => {
                artifact = Some(value.strip_prefix('"')?.strip_suffix('"')?.to_string());
            }
            "total" => fields[0] = Some(value.parse().ok()?),
            "computed" => fields[1] = Some(value.parse().ok()?),
            "restored" => fields[2] = Some(value.parse().ok()?),
            "failed" => fields[3] = Some(value.parse().ok()?),
            "timed_out" => fields[4] = Some(value.parse().ok()?),
            "quarantined" => fields[5] = Some(value.parse().ok()?),
            "retries" => fields[6] = Some(value.parse().ok()?),
            "engine_lru" => fields[7] = Some(value.parse().ok()?),
            "engine_fifo" => fields[8] = Some(value.parse().ok()?),
            "engine_random" => fields[9] = Some(value.parse().ok()?),
            "direct" => fields[10] = Some(value.parse().ok()?),
            "elapsed_ms" => elapsed_ms = Some(value.parse::<u128>().ok()?),
            "sealed" => sealed = Some(value.parse::<bool>().ok()?),
            "interrupted" => interrupted = Some(value.parse::<bool>().ok()?),
            _ => return None,
        }
    }
    if version? != PROGRESS_VERSION {
        return None;
    }
    Some(ProgressSnapshot {
        artifact: artifact?,
        total: fields[0]?,
        computed: fields[1]?,
        restored: fields[2]?,
        failed: fields[3]?,
        timed_out: fields[4]?,
        quarantined: fields[5]?,
        retries: fields[6]?,
        engine_points: [fields[7]?, fields[8]?, fields[9]?],
        direct_points: fields[10]?,
        elapsed_ms: elapsed_ms?,
        sealed: sealed?,
        interrupted: interrupted?,
    })
}

/// Reads the progress feed without ever blocking, panicking or guessing:
/// a missing, unreadable, torn or corrupt file is `None`.
pub fn read_progress(path: &Path) -> Option<ProgressSnapshot> {
    let bytes = fs::read(path).ok()?;
    parse_progress(&String::from_utf8_lossy(&bytes))
}

/// Atomically replaces `path` with `content`: same-directory temp file,
/// fsync, rename — a reader sees the old bytes or the new, never a mix.
fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".{PROGRESS_FILE}.tmp-{}", std::process::id()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(content.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// The emitter side of the progress feed: created at phase start, fed a
/// completion event per finished point (from any worker thread), and
/// sealed exactly once at phase end. Flushes the snapshot to disk every
/// `every` completion events plus once at start and seal, so the file
/// cost stays negligible next to point evaluation.
///
/// Feed I/O must never lose the science: write failures are reported on
/// stderr once and further flushes are skipped.
#[derive(Debug)]
pub struct ProgressWriter {
    path: PathBuf,
    every: usize,
    started: Instant,
    state: Mutex<ProgressSnapshot>,
    since_flush: Mutex<usize>,
    broken: AtomicBool,
}

impl ProgressWriter {
    /// Starts the feed for a phase: records what resume already settled
    /// (restored and quarantined points) and writes the initial
    /// snapshot. `every` of zero flushes on every completion.
    pub fn start(
        dir: &Path,
        artifact: &str,
        total: usize,
        restored: usize,
        quarantined: usize,
        every: usize,
    ) -> ProgressWriter {
        let writer = ProgressWriter {
            path: progress_path(dir),
            every: every.max(1),
            started: Instant::now(),
            state: Mutex::new(ProgressSnapshot {
                artifact: artifact.to_string(),
                total,
                computed: 0,
                restored,
                failed: 0,
                timed_out: 0,
                quarantined,
                retries: 0,
                engine_points: [0; 3],
                direct_points: 0,
                elapsed_ms: 0,
                sealed: false,
                interrupted: false,
            }),
            since_flush: Mutex::new(0),
            broken: AtomicBool::new(false),
        };
        writer.flush();
        writer
    }

    fn flush(&self) {
        if self.broken.load(Ordering::Relaxed) {
            return;
        }
        let content = {
            let mut state = self.state.lock().expect("progress state lock");
            state.elapsed_ms = self.started.elapsed().as_millis();
            state.render()
        };
        if let Err(e) = write_atomic(&self.path, &content) {
            if !self.broken.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: progress feed {} unavailable ({e}); continuing without",
                    self.path.display()
                );
            }
        }
    }

    fn event(&self, update: impl FnOnce(&mut ProgressSnapshot)) {
        update(&mut self.state.lock().expect("progress state lock"));
        let due = {
            let mut since = self.since_flush.lock().expect("progress flush lock");
            *since += 1;
            if *since >= self.every {
                *since = 0;
                true
            } else {
                false
            }
        };
        if due {
            self.flush();
        }
    }

    /// One point computed successfully.
    pub fn completed(&self) {
        self.event(|s| s.computed += 1);
    }

    /// One point failed; `timed_out` marks a watchdog deadline overrun.
    pub fn failed(&self, timed_out: bool) {
        self.event(|s| {
            s.failed += 1;
            if timed_out {
                s.timed_out += 1;
            }
        });
    }

    /// One supervisor retry attempt happened (the point is not finished).
    pub fn retried(&self) {
        let mut state = self.state.lock().expect("progress state lock");
        state.retries += 1;
    }

    /// Folds a batch retry tally in at once — for callers that only
    /// learn the count from supervisor stats after a batch returns. The
    /// tally lands on disk with the next flush (the seal at the latest).
    pub fn add_retries(&self, n: usize) {
        let mut state = self.state.lock().expect("progress state lock");
        state.retries += n;
    }

    /// Folds a batch of evaluation-path tallies in at once — slice-engine
    /// points per `occache_core::EngineKind` plus direct-simulator
    /// fallbacks — for callers that learn the split from supervisor
    /// stats after a batch returns. Lands with the next flush (the seal
    /// at the latest).
    pub fn add_engine_points(&self, engine: [usize; 3], direct: usize) {
        let mut state = self.state.lock().expect("progress state lock");
        for (total, n) in state.engine_points.iter_mut().zip(engine) {
            *total += n;
        }
        state.direct_points += direct;
    }

    /// Seals the feed: the final snapshot, flushed unconditionally, with
    /// `sealed: true` (and the interrupt flag). Call exactly once at
    /// phase end.
    pub fn seal(&self, interrupted: bool) {
        {
            let mut state = self.state.lock().expect("progress state lock");
            state.sealed = true;
            state.interrupted = interrupted;
        }
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProgressSnapshot {
        ProgressSnapshot {
            artifact: "table7".to_string(),
            total: 50,
            computed: 12,
            restored: 5,
            failed: 1,
            timed_out: 1,
            quarantined: 2,
            retries: 3,
            engine_points: [8, 3, 1],
            direct_points: 2,
            elapsed_ms: 1500,
            sealed: false,
            interrupted: false,
        }
    }

    #[test]
    fn snapshot_round_trips_through_the_parser() {
        let snap = sample();
        assert_eq!(parse_progress(&snap.render()), Some(snap));
        let sealed = ProgressSnapshot {
            sealed: true,
            interrupted: true,
            ..sample()
        };
        assert_eq!(parse_progress(&sealed.render()), Some(sealed));
    }

    #[test]
    fn every_truncated_prefix_is_rejected() {
        let line = sample().render();
        for cut in 0..line.len() - 1 {
            assert_eq!(parse_progress(&line[..cut]), None, "prefix of {cut} bytes");
        }
    }

    #[test]
    fn flipped_bytes_break_the_checksum() {
        let line = sample().render();
        let bad = line.replace("\"computed\":12", "\"computed\":13");
        assert_eq!(parse_progress(&bad), None);
    }

    #[test]
    fn stale_version_records_are_rejected() {
        // A well-formed v1 line (correctly checksummed, engine columns
        // absent) must not parse as v2: the reader would otherwise
        // invent engine counts.
        let body = "\"v\":1,\"artifact\":\"t\",\"total\":4,\"computed\":1,\"restored\":0,\
                    \"failed\":0,\"timed_out\":0,\"quarantined\":0,\"retries\":0,\
                    \"elapsed_ms\":10,\"sealed\":false,\"interrupted\":false";
        let line = format!("{{{body},\"sum\":\"{:016x}\"}}\n", fnv1a(body.as_bytes()));
        assert_eq!(parse_progress(&line), None);
    }

    #[test]
    fn eta_extrapolates_the_point_rate() {
        let snap = sample();
        // 12 computed in 1500 ms -> 125 ms/point; 30 remaining.
        assert_eq!(snap.remaining(), 30);
        assert_eq!(snap.eta_ms(), Some(3750));
        let sealed = ProgressSnapshot {
            sealed: true,
            ..sample()
        };
        assert_eq!(sealed.eta_ms(), None);
    }

    #[test]
    fn writer_flushes_start_events_and_seal() {
        let dir = std::env::temp_dir().join(format!("occache-progress-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let w = ProgressWriter::start(&dir, "t", 4, 1, 0, 2);
        let first = read_progress(&progress_path(&dir)).expect("initial snapshot");
        assert_eq!(first.computed, 0);
        assert_eq!(first.restored, 1);
        w.completed();
        w.failed(true);
        let mid = read_progress(&progress_path(&dir)).expect("mid snapshot");
        assert_eq!((mid.computed, mid.failed, mid.timed_out), (1, 1, 1));
        w.retried();
        w.completed(); // below the flush interval: not yet on disk
        w.add_engine_points([2, 0, 0], 1);
        w.add_engine_points([0, 1, 0], 0);
        w.seal(false);
        let last = read_progress(&progress_path(&dir)).expect("sealed snapshot");
        assert!(last.sealed);
        assert_eq!((last.computed, last.retries), (2, 1));
        assert_eq!(last.engine_points, [2, 1, 0]);
        assert_eq!(last.direct_points, 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
