//! The checkpoint-journal record format and read-side scan.
//!
//! A journal is an append-only file of sealed JSON lines, one per
//! completed (or failed) design point, keyed by
//! [`crate::keys::point_key`]. Since format v2 every record carries a
//! schema-version field and an FNV-1a checksum over its payload, so
//! corruption is *detected* rather than silently mis-parsed. This module
//! owns what both front-ends need — the codec ([`seal`], [`parse_line`])
//! and the non-mutating [`scan_journal`] the batch harness resumes from
//! and the serving layer warm-starts its cache from. The write-side
//! orchestration (advisory locking, atomic compaction, the single-writer
//! append thread, quarantine policy) stays in
//! `occache-experiments::checkpoint`, which owns the journal's
//! lifecycle.
//!
//! Record format (v2): `{<body>,"sum":"<fnv1a(body) as 016x>"}` where
//! `<body>` is either a point record
//! `"v":2,"key":"<016x>","miss":M,"traffic":T,"nibble":N,"redundant":R`
//! or a failure tombstone `"v":2,"key":"<016x>","fail":COUNT`.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::eval::DesignPoint;
use crate::fmt::fmt_f64_exact;
use crate::keys::fnv1a;

/// The journal schema version this build reads and writes. Records with
/// any other version are counted as bad lines and re-simulated, never
/// guessed at.
pub const JOURNAL_VERSION: u32 = 2;

/// A journalled measurement: the averaged ratios of one design point.
/// The config itself is not stored — the key identifies it, and the
/// caller's config list supplies the full value on restore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Averaged miss ratio.
    pub miss: f64,
    /// Averaged traffic ratio.
    pub traffic: f64,
    /// Averaged nibble-mode scaled traffic ratio.
    pub nibble: f64,
    /// Averaged redundant-load fraction.
    pub redundant: f64,
}

impl Entry {
    /// The journalled fields of a computed design point.
    pub fn of(p: &DesignPoint) -> Self {
        Entry {
            miss: p.miss_ratio,
            traffic: p.traffic_ratio,
            nibble: p.nibble_traffic_ratio,
            redundant: p.redundant_load_fraction,
        }
    }

    /// The first non-finite field's name, or `None` when all four
    /// metrics are finite (the only state allowed into the journal).
    pub fn non_finite_field(&self) -> Option<&'static str> {
        [
            ("miss_ratio", self.miss),
            ("traffic_ratio", self.traffic),
            ("nibble_traffic_ratio", self.nibble),
            ("redundant_load_fraction", self.redundant),
        ]
        .into_iter()
        .find(|(_, v)| !v.is_finite())
        .map(|(name, _)| name)
    }
}

/// Journal health observed while loading a checkpoint (all zero for
/// non-resumable sweeps and pristine journals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalHealth {
    /// Corrupt journal lines encountered (bad checksum, unknown schema
    /// version, unparseable, non-finite payload) — counted, warned about,
    /// and dropped by compaction, never silently skipped.
    pub bad_lines: usize,
    /// Bytes of torn trailing record truncated away by tail repair.
    pub repaired_tail_bytes: usize,
}

/// The journal path for an artifact under `dir`.
pub fn journal_path(dir: &Path, artifact: &str) -> PathBuf {
    dir.join(".checkpoint").join(format!("{artifact}.jsonl"))
}

/// The advisory lockfile path for a results directory.
pub fn lock_path(dir: &Path) -> PathBuf {
    dir.join(".checkpoint").join("LOCK")
}

/// Renders the body of a point record. Floats use
/// [`fmt_f64_exact`] — the shortest string that round-trips exactly — so
/// a restored point is bit-identical to the computed one.
pub fn point_body(key: u64, e: &Entry) -> String {
    format!(
        "\"v\":{JOURNAL_VERSION},\"key\":\"{key:016x}\",\"miss\":{},\"traffic\":{},\"nibble\":{},\"redundant\":{}",
        fmt_f64_exact(e.miss),
        fmt_f64_exact(e.traffic),
        fmt_f64_exact(e.nibble),
        fmt_f64_exact(e.redundant)
    )
}

/// Renders the body of a failure tombstone.
pub fn tombstone_body(key: u64, count: u32) -> String {
    format!("\"v\":{JOURNAL_VERSION},\"key\":\"{key:016x}\",\"fail\":{count}")
}

/// Seals a record body into a journal line: the body plus an FNV-1a
/// checksum over exactly the body bytes. Any single flipped or missing
/// byte breaks either the checksum or the line structure.
pub fn seal(body: &str) -> String {
    format!("{{{body},\"sum\":\"{:016x}\"}}", fnv1a(body.as_bytes()))
}

/// One successfully parsed v2 journal record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Record {
    /// A completed design point.
    Point(u64, Entry),
    /// A failure tombstone: the point failed `count` more time(s).
    Tombstone(u64, u32),
}

/// Why a journal line was rejected. Every rejection is counted and
/// reported — never silently skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineIssue {
    /// Not a sealed record at all (torn write, foreign garbage).
    Unparseable,
    /// Well-formed but the checksum does not match the payload.
    BadChecksum,
    /// A schema version this build does not read (including legacy v1
    /// lines, which carry no checksum and so cannot be trusted).
    BadVersion,
    /// A point record whose metrics include NaN or infinity.
    NonFinite,
}

impl std::fmt::Display for LineIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LineIssue::Unparseable => "unparseable",
            LineIssue::BadChecksum => "bad checksum",
            LineIssue::BadVersion => "unsupported schema version",
            LineIssue::NonFinite => "non-finite metric",
        })
    }
}

/// Parses the comma-separated fields of a record body. Values are a hex
/// string and plain numbers, none of which can contain a comma, so
/// splitting on ',' is unambiguous.
fn parse_body(body: &str) -> Option<Record> {
    let mut version = None;
    let mut key = None;
    let mut fail = None;
    let mut miss = None;
    let mut traffic = None;
    let mut nibble = None;
    let mut redundant = None;
    for field in body.split(',') {
        let (name, value) = field.split_once(':')?;
        let name = name.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value = value.trim();
        match name {
            "v" => version = Some(value.parse::<u32>().ok()?),
            "key" => {
                let hex = value.strip_prefix('"')?.strip_suffix('"')?;
                key = Some(u64::from_str_radix(hex, 16).ok()?);
            }
            "fail" => fail = Some(value.parse::<u32>().ok()?),
            "miss" => miss = Some(value.parse().ok()?),
            "traffic" => traffic = Some(value.parse().ok()?),
            "nibble" => nibble = Some(value.parse().ok()?),
            "redundant" => redundant = Some(value.parse().ok()?),
            _ => return None,
        }
    }
    if version? != JOURNAL_VERSION {
        return None;
    }
    let key = key?;
    if let Some(count) = fail {
        if miss.is_some() || traffic.is_some() || nibble.is_some() || redundant.is_some() {
            return None;
        }
        return Some(Record::Tombstone(key, count));
    }
    Some(Record::Point(
        key,
        Entry {
            miss: miss?,
            traffic: traffic?,
            nibble: nibble?,
            redundant: redundant?,
        },
    ))
}

/// Whether a line is a legacy (v1) record: parseable under the old
/// unchecksummed schema. Reported as [`LineIssue::BadVersion`] so an old
/// journal reads as "N stale lines", not as garbage.
fn is_v1_line(line: &str) -> bool {
    let Some(inner) = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
    else {
        return false;
    };
    let mut saw_key = false;
    for field in inner.split(',') {
        let Some((name, _)) = field.split_once(':') else {
            return false;
        };
        match name.trim() {
            "\"key\"" => saw_key = true,
            "\"miss\"" | "\"traffic\"" | "\"nibble\"" | "\"redundant\"" => {}
            _ => return false,
        }
    }
    saw_key
}

/// Parses one journal line into a [`Record`] or a structured rejection.
///
/// # Errors
///
/// A [`LineIssue`] classifying why the line was rejected.
pub fn parse_line(line: &str) -> Result<Record, LineIssue> {
    let trimmed = line.trim();
    let Some(inner) = trimmed.strip_prefix('{').and_then(|s| s.strip_suffix('}')) else {
        return Err(LineIssue::Unparseable);
    };
    let Some((body, sum_part)) = inner.rsplit_once(",\"sum\":\"") else {
        if is_v1_line(trimmed) {
            return Err(LineIssue::BadVersion);
        }
        return Err(LineIssue::Unparseable);
    };
    let sum = sum_part
        .strip_suffix('"')
        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
        .ok_or(LineIssue::Unparseable)?;
    if fnv1a(body.as_bytes()) != sum {
        return Err(LineIssue::BadChecksum);
    }
    let record = parse_body(body).ok_or(LineIssue::BadVersion)?;
    if let Record::Point(_, entry) = &record {
        if entry.non_finite_field().is_some() {
            return Err(LineIssue::NonFinite);
        }
    }
    Ok(record)
}

/// Everything a read of one journal file learned: the intact records,
/// the damage, and whether an in-place repair (compaction) is needed.
#[derive(Debug, Clone, Default)]
pub struct JournalScan {
    /// Intact completed points by key (last record wins).
    pub points: HashMap<u64, Entry>,
    /// Accumulated failure counts by key (tombstones summed).
    pub fails: HashMap<u64, u32>,
    /// Rejected lines as `(1-based line number, why)`.
    pub issues: Vec<(usize, LineIssue)>,
    /// Bytes of a torn trailing record (crash mid-append) that repair
    /// truncates away. Zero for a cleanly terminated journal.
    pub torn_tail_bytes: usize,
    /// True when the final record parsed but lacked its newline (the
    /// append crashed between the write and the `\n` landing).
    pub missing_final_newline: bool,
}

impl JournalScan {
    /// Whether the on-disk file needs rewriting to become pristine.
    pub fn needs_repair(&self) -> bool {
        !self.issues.is_empty() || self.torn_tail_bytes > 0 || self.missing_final_newline
    }

    /// The journal-health counters this scan contributes to a sweep
    /// outcome.
    pub fn health(&self) -> JournalHealth {
        JournalHealth {
            bad_lines: self.issues.len(),
            repaired_tail_bytes: self.torn_tail_bytes,
        }
    }
}

/// Reads a journal without modifying it, classifying every line. A
/// missing file is an empty (healthy) journal. The final segment is
/// special-cased: if it has no terminating newline but still parses, the
/// record is kept (only the newline is missing); if it does not parse it
/// is a torn tail from a crashed append, counted in bytes rather than as
/// a bad line.
///
/// # Errors
///
/// Propagates I/O errors other than a missing file.
pub fn scan_journal(path: &Path) -> io::Result<JournalScan> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalScan::default()),
        Err(e) => return Err(e),
    };
    let mut scan = JournalScan::default();
    let mut line_no = 0usize;
    let mut rest: &[u8] = &bytes;
    while !rest.is_empty() {
        line_no += 1;
        let (segment, terminated) = match rest.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let seg = &rest[..nl];
                rest = &rest[nl + 1..];
                (seg, true)
            }
            None => {
                let seg = rest;
                rest = &[];
                (seg, false)
            }
        };
        let text = String::from_utf8_lossy(segment);
        match parse_line(&text) {
            Ok(Record::Point(key, entry)) => {
                if terminated {
                    scan.points.insert(key, entry);
                } else {
                    scan.points.insert(key, entry);
                    scan.missing_final_newline = true;
                }
            }
            Ok(Record::Tombstone(key, count)) => {
                *scan.fails.entry(key).or_insert(0) += count;
                if !terminated {
                    scan.missing_final_newline = true;
                }
            }
            Err(issue) => {
                if terminated {
                    scan.issues.push((line_no, issue));
                } else {
                    // A torn trailing record: a crash mid-append, not
                    // corruption of committed data.
                    scan.torn_tail_bytes = segment.len();
                }
            }
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_records_round_trip_through_the_parser() {
        let entry = Entry {
            miss: 0.125,
            traffic: 1.5,
            nibble: 0.75,
            redundant: 0.0,
        };
        let line = seal(&point_body(0xabc, &entry));
        assert_eq!(parse_line(&line), Ok(Record::Point(0xabc, entry)));
        let tomb = seal(&tombstone_body(0xdef, 2));
        assert_eq!(parse_line(&tomb), Ok(Record::Tombstone(0xdef, 2)));
    }

    #[test]
    fn corruption_is_classified_not_guessed() {
        let entry = Entry {
            miss: 0.1,
            traffic: 1.0,
            nibble: 0.5,
            redundant: 0.0,
        };
        let line = seal(&point_body(7, &entry));
        let flipped = line.replace("0.1", "0.2");
        assert_eq!(parse_line(&flipped), Err(LineIssue::BadChecksum));
        assert_eq!(parse_line("not json"), Err(LineIssue::Unparseable));
        assert_eq!(
            parse_line("{\"key\":\"0000000000000007\",\"miss\":0.1,\"traffic\":1.0,\"nibble\":0.5,\"redundant\":0.0}"),
            Err(LineIssue::BadVersion),
            "legacy v1 lines read as stale, not garbage"
        );
    }

    #[test]
    fn non_finite_entries_are_rejected_by_name() {
        let entry = Entry {
            miss: f64::NAN,
            traffic: 1.0,
            nibble: 0.5,
            redundant: 0.0,
        };
        assert_eq!(entry.non_finite_field(), Some("miss_ratio"));
        let line = seal(&point_body(9, &entry));
        assert_eq!(parse_line(&line), Err(LineIssue::NonFinite));
    }
}
