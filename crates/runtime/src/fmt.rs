//! The f64 rendering convention shared by every exact-value surface.
//!
//! Journal records, the serving layer's JSON responses and the metric
//! quantile samples all print floats with `{:?}`, which emits the
//! shortest decimal string that parses back to the identical bits — so
//! a restored or cached point is bit-identical to the computed one.
//! Keeping the convention in one named helper stops the three surfaces
//! from drifting apart.

/// Renders an `f64` as the shortest string that round-trips exactly:
/// `parse::<f64>()` of the result yields the same bits.
pub fn fmt_f64_exact(value: f64) -> String {
    format!("{value:?}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn common_values_render_shortest() {
        assert_eq!(fmt_f64_exact(0.1), "0.1");
        assert_eq!(fmt_f64_exact(1.0), "1.0");
        assert_eq!(fmt_f64_exact(0.001024), "0.001024");
        assert_eq!(fmt_f64_exact(f64::NAN), "NaN");
    }

    proptest! {
        #[test]
        fn rendering_round_trips_exactly(
            value in (0u64..=u64::MAX).prop_filter_map("finite", |bits| {
                let v = f64::from_bits(bits);
                v.is_finite().then_some(v)
            })
        ) {
            let parsed: f64 = fmt_f64_exact(value).parse().expect("parses back");
            prop_assert_eq!(parsed.to_bits(), value.to_bits());
        }

        #[test]
        fn ratio_range_round_trips_exactly(
            // Metric ratios live in [0, 4]; cover that range densely.
            value in (0u64..=u64::MAX).prop_map(|n| n as f64 / u64::MAX as f64 * 4.0)
        ) {
            let parsed: f64 = fmt_f64_exact(value).parse().expect("parses back");
            prop_assert_eq!(parsed.to_bits(), value.to_bits());
        }
    }
}
