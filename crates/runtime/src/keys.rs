//! Content addressing shared by the checkpoint journals, the serving
//! layer's result cache, and the artifact manifest.
//!
//! Every surface that identifies a design point by value uses the same
//! derivation: FNV-1a over the config's full `Debug` rendering, the
//! trace-set fingerprint, and the warm-up length. A cache entry in the
//! server therefore means exactly what a journal line means in a batch
//! run, which is what lets a `results/.checkpoint/` directory warm-start
//! the service.

use occache_core::CacheConfig;

use crate::eval::Trace;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher (no std `Hasher` indirection so the stream
/// fed in is explicit and stable across Rust versions).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a over a byte string: the hash behind journal record
/// checksums and the artifact manifest's content hashes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

/// A stable fingerprint of a trace set: names, lengths and every
/// reference. Two sweeps resume from each other's journals only when they
/// saw byte-identical traces.
pub fn trace_fingerprint(traces: &[Trace]) -> u64 {
    let mut h = Fnv::new();
    for trace in traces {
        h.write(trace.name.as_bytes());
        h.write(&[0xff]);
        h.write(&(trace.len() as u64).to_le_bytes());
        for r in trace.iter() {
            h.write(&[occache_trace::din::din_label(r.kind())]);
            h.write(&r.address().value().to_le_bytes());
        }
    }
    h.finish()
}

/// A stable fingerprint of a config grid (full `Debug` rendering of each
/// config, in order) — recorded in the manifest and run report so a
/// verifier can tell whether an artifact was produced from the grid it
/// expects.
pub fn config_fingerprint(configs: &[CacheConfig]) -> u64 {
    let mut h = Fnv::new();
    for config in configs {
        h.write(format!("{config:?}").as_bytes());
        h.write(&[0xff]);
    }
    h.finish()
}

/// The journal key of one design point: config (its full `Debug`
/// rendering, which covers every field) + trace fingerprint + warm-up.
///
/// Random-replacement points additionally fold in the replacement seed
/// ([`occache_core::DEFAULT_RANDOM_SEED`] everywhere today): their
/// metrics are a function of the seed, so a journal resumed — or a
/// cluster peer consulted — after a seed change must miss rather than
/// serve another seed's numbers. Deterministic policies do *not* fold
/// the seed, keeping every existing LRU/FIFO journal and golden hash
/// valid.
pub fn point_key(config: &CacheConfig, fingerprint: u64, warmup: usize) -> u64 {
    let mut h = Fnv::new();
    h.write(format!("{config:?}").as_bytes());
    h.write(&fingerprint.to_le_bytes());
    h.write(&(warmup as u64).to_le_bytes());
    if config.replacement() == occache_core::ReplacementPolicy::Random {
        h.write(&occache_core::DEFAULT_RANDOM_SEED.to_le_bytes());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn point_key_separates_warmup_and_fingerprint() {
        let config = occache_core::CacheConfig::builder()
            .net_size(64)
            .block_size(8)
            .sub_block_size(4)
            .word_size(2)
            .build()
            .expect("valid geometry");
        let base = point_key(&config, 1, 0);
        assert_ne!(base, point_key(&config, 2, 0));
        assert_ne!(base, point_key(&config, 1, 100));
        assert_eq!(base, point_key(&config, 1, 0));
    }

    #[test]
    fn random_points_fold_the_seed_and_stay_stable() {
        use occache_core::ReplacementPolicy;
        let build = |policy| {
            occache_core::CacheConfig::builder()
                .net_size(64)
                .block_size(8)
                .sub_block_size(4)
                .word_size(2)
                .replacement(policy)
                .build()
                .expect("valid geometry")
        };
        // Stable across calls (journal resume and cluster routing key
        // on this), and distinct per policy — the Debug rendering
        // already separates policies; the seed fold must not collapse
        // that.
        let random = build(ReplacementPolicy::Random);
        assert_eq!(point_key(&random, 1, 0), point_key(&random, 1, 0));
        let keys = [
            point_key(&build(ReplacementPolicy::Lru), 1, 0),
            point_key(&build(ReplacementPolicy::Fifo), 1, 0),
            point_key(&random, 1, 0),
        ];
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
    }
}
