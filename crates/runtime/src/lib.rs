//! `occache-runtime` — the one execution and instrumentation layer under
//! both front-ends of the workspace.
//!
//! Before this crate existed the batch harness
//! (`occache-experiments`) and the serving layer (`occache-serve`) each
//! carried their own worker pool, slice coalescing, retry/timeout
//! policy, point-key derivation and metrics stack. Everything shared
//! now lives here, below the workload layer, so a feature lands once:
//!
//! * [`eval`] — design-point evaluation: [`eval::Trace`],
//!   [`eval::DesignPoint`], the direct and one-pass engine paths, the
//!   slice planner, and structured [`eval::PointError`] faults.
//! * [`executor`] — the supervised executor: per-point watchdog
//!   deadlines, bounded retries with capped backoff, deterministic
//!   fault injection, and the bounded worker pool over planned sweep
//!   units. The *static grid* job source — batch sweeps hand it a
//!   config list and stream results out through a hook.
//! * [`queue`] — the live-queue job source: a bounded submission queue
//!   with backpressure, a fixed worker pool draining it, and batch
//!   coalescing of compatible jobs into one supervised grid. The
//!   serving layer's scheduler.
//! * [`instrument`] — atomic counters, fixed-bucket latency histograms,
//!   and the snapshot [`instrument::Registry`] whose named sinks render
//!   the same instruments as Prometheus text (`/metrics`) or greppable
//!   line-oriented JSON (`RUN_REPORT.json` totals).
//! * [`config`] — every `OCCACHE_*` environment variable, parsed in one
//!   place with strict error behavior.
//! * [`keys`] — content addressing: FNV-1a, trace/config fingerprints,
//!   and the journal/cache point key.
//! * [`journal`] — the checkpoint journal record format (sealed,
//!   checksummed lines) and the read-side scan; the write-side
//!   orchestration (locking, compaction, resume) stays in
//!   `occache-experiments::checkpoint`.
//! * [`progress`] — the live progress feed
//!   (`results/.checkpoint/PROGRESS.json`): an atomically replaced,
//!   checksummed snapshot of the running sweep phase, written by the
//!   supervised execution path and tailed by `occache-top`.
//! * [`interrupt`] — cooperative SIGINT/SIGTERM handling shared by the
//!   batch bins and the server's accept loop.
//! * [`fmt`] — the shortest-round-trip f64 rendering convention shared
//!   by journal records, JSON responses and metric quantiles.

#![warn(missing_docs)]

pub mod config;
pub mod eval;
pub mod executor;
pub mod fmt;
pub mod instrument;
pub mod interrupt;
pub mod journal;
pub mod keys;
pub mod progress;
pub mod queue;
