//! Cross-runtime equivalence: the same point list evaluated through the
//! batch executor (static-grid job source) and through the live-queue
//! scheduler (the serving layer's job source) must produce bit-identical
//! metrics. Both front-ends are thin clients of the same evaluation
//! core, and this test is the contract that keeps them that way.

use std::sync::mpsc::channel;
use std::sync::Arc;

use occache_core::CacheConfig;
use occache_runtime::eval::Trace;
use occache_runtime::executor::{evaluate_points_isolated, SupervisorPolicy};
use occache_runtime::keys::{point_key, trace_fingerprint};
use occache_runtime::queue::{Job, JobResult, Priority, Scheduler, TraceSet};
use occache_workloads::WorkloadSpec;

fn grid(net: u64) -> Vec<CacheConfig> {
    let mut configs = Vec::new();
    let mut block = 64u64;
    while block >= 2 {
        let mut sub = block.min(32);
        while sub >= 2 {
            configs.push(
                CacheConfig::builder()
                    .net_size(net)
                    .block_size(block)
                    .sub_block_size(sub)
                    .word_size(2)
                    .build()
                    .expect("valid geometry"),
            );
            sub /= 2;
        }
        block /= 2;
    }
    configs
}

#[test]
fn batch_executor_and_live_queue_agree_bit_for_bit() {
    let spec = WorkloadSpec::pdp11_ed();
    let traces = vec![Trace::new(spec.name(), spec.generator(0).take(2_000))];
    let configs = grid(256);

    // Batch front-end: the static-grid path every experiment binary uses
    // (engine-slice planning included).
    let batch = evaluate_points_isolated(&configs, &traces, 0);
    assert!(batch.failures.is_empty(), "{:?}", batch.failures);

    // Serving front-end: the same points submitted as live jobs through
    // the bounded queue, coalesced and evaluated by the worker pool.
    let fingerprint = trace_fingerprint(&traces);
    let set = Arc::new(TraceSet {
        traces,
        fingerprint,
    });
    let sched = Scheduler::new(2, configs.len(), 64, SupervisorPolicy::disabled());
    let (tx, rx) = channel();
    for config in &configs {
        sched
            .submit(Job {
                config: *config,
                traces: Arc::clone(&set),
                warmup: 0,
                priority: Priority::default(),
                key: point_key(config, fingerprint, 0),
                reply: tx.clone(),
            })
            .expect("queue sized to the grid");
    }
    drop(tx);
    let served: Vec<JobResult> = rx.iter().collect();
    sched.shutdown();
    assert_eq!(served.len(), configs.len());

    for config in &configs {
        let key = point_key(config, fingerprint, 0);
        let from_queue = served
            .iter()
            .find(|r| r.key == key)
            .and_then(|r| r.result.as_ref().ok())
            .unwrap_or_else(|| panic!("live queue lost {config}"));
        let from_batch = batch
            .points
            .iter()
            .find(|p| p.config == *config)
            .unwrap_or_else(|| panic!("batch executor lost {config}"));
        for (label, a, b) in [
            ("miss_ratio", from_batch.miss_ratio, from_queue.miss_ratio),
            (
                "traffic_ratio",
                from_batch.traffic_ratio,
                from_queue.traffic_ratio,
            ),
            (
                "nibble_traffic_ratio",
                from_batch.nibble_traffic_ratio,
                from_queue.nibble_traffic_ratio,
            ),
            (
                "redundant_load_fraction",
                from_batch.redundant_load_fraction,
                from_queue.redundant_load_fraction,
            ),
        ] {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{config}: {label} differs between front-ends ({a} vs {b})"
            );
        }
    }
}
