//! Seeded-Random determinism: the Random replacement policy is a pure
//! function of (config, trace, warmup, seed). Re-running the same grid
//! — in the same process, with one worker or four — must produce
//! bit-identical metrics and identical journal point keys, because the
//! per-class RNG is seeded from the fixed default seed, never from time,
//! thread identity or scheduling order. Anything less would make Random
//! artifacts unreproducible and journal resume unsound.

use occache_core::{CacheConfig, EngineKind, ReplacementPolicy};
use occache_runtime::eval::Trace;
use occache_runtime::executor::{evaluate_results_supervised_with, SupervisorPolicy};
use occache_runtime::keys::{point_key, trace_fingerprint};
use occache_workloads::WorkloadSpec;

fn random_grid(net: u64) -> Vec<CacheConfig> {
    let mut configs = Vec::new();
    let mut block = 32u64;
    while block >= 2 {
        let mut sub = block.min(16);
        while sub >= 2 {
            configs.push(
                CacheConfig::builder()
                    .net_size(net)
                    .block_size(block)
                    .sub_block_size(sub)
                    .word_size(2)
                    .associativity(4)
                    .replacement(ReplacementPolicy::Random)
                    .build()
                    .expect("valid geometry"),
            );
            sub /= 2;
        }
        block /= 2;
    }
    configs
}

fn run(configs: &[CacheConfig], traces: &[Trace], workers: usize) -> Vec<(f64, f64, f64, f64)> {
    let policy = SupervisorPolicy::disabled();
    let (results, stats) =
        evaluate_results_supervised_with(&policy, configs, traces, 0, Some(workers), |_, _| {});
    // Every point of a stock Random grid must ride the Random engine:
    // determinism via per-class RNG is only exercised on that path.
    assert_eq!(stats.direct_points, 0, "direct fallback on a stock grid");
    assert_eq!(
        stats.engine_points[EngineKind::Random.index()],
        configs.len()
    );
    results
        .into_iter()
        .map(|r| {
            let p = r.expect("random grid evaluates cleanly");
            (
                p.miss_ratio,
                p.traffic_ratio,
                p.nibble_traffic_ratio,
                p.redundant_load_fraction,
            )
        })
        .collect()
}

#[test]
fn random_policy_is_deterministic_across_runs_and_thread_counts() {
    let spec = WorkloadSpec::pdp11_ed();
    let traces = vec![Trace::new(spec.name(), spec.generator(0).take(3_000))];
    let configs = random_grid(256);

    let serial = run(&configs, &traces, 1);
    let serial_again = run(&configs, &traces, 1);
    let threaded = run(&configs, &traces, 4);
    for (config, (a, b, c)) in configs
        .iter()
        .zip(serial.iter().zip(&serial_again).zip(&threaded))
        .map(|(cfg, ((a, b), c))| (cfg, (a, b, c)))
    {
        for (label, x, y, z) in [
            ("miss_ratio", a.0, b.0, c.0),
            ("traffic_ratio", a.1, b.1, c.1),
            ("nibble_traffic_ratio", a.2, b.2, c.2),
            ("redundant_load_fraction", a.3, b.3, c.3),
        ] {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{config}: {label} differs between two identical runs"
            );
            assert_eq!(
                x.to_bits(),
                z.to_bits(),
                "{config}: {label} differs between 1 and 4 workers"
            );
        }
    }

    // The journal identity of every Random point is equally stable:
    // same key on recomputation (resume would otherwise re-simulate or,
    // worse, mis-attribute), and distinct from the LRU twin's key (the
    // seed fold plus the policy in the config rendering).
    let fingerprint = trace_fingerprint(&traces);
    for config in &configs {
        assert_eq!(
            point_key(config, fingerprint, 0),
            point_key(config, fingerprint, 0)
        );
        let lru_twin = CacheConfig::builder()
            .net_size(config.net_size())
            .block_size(config.block_size())
            .sub_block_size(config.sub_block_size())
            .word_size(config.word_size())
            .associativity(config.associativity())
            .build()
            .expect("valid geometry");
        assert_ne!(
            point_key(config, fingerprint, 0),
            point_key(&lru_twin, fingerprint, 0),
            "{config}: Random and LRU twins must never share a journal key"
        );
    }
}
