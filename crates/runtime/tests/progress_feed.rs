//! Property: the progress-feed reader never blocks, panics or
//! mis-attributes counts, whatever bytes it finds. For randomly drawn
//! snapshots, every byte-truncated prefix of the on-disk record — and
//! every single-byte corruption — must read as "no snapshot", never as
//! a snapshot with different counts; the intact record must round-trip
//! exactly.

use occache_runtime::progress::{parse_progress, read_progress, ProgressSnapshot};
use proptest::prelude::*;

fn snapshot(draw: (u64, u64, u64, u64, u64, u8)) -> ProgressSnapshot {
    let (total, computed, restored, failed, elapsed, flags) = draw;
    ProgressSnapshot {
        artifact: format!("artifact_{}", total % 13),
        total: total as usize,
        computed: computed as usize,
        restored: restored as usize,
        failed: failed as usize,
        timed_out: (failed / 2) as usize,
        quarantined: (restored % 3) as usize,
        retries: (computed % 5) as usize,
        engine_points: [
            (computed % 7) as usize,
            (computed % 11) as usize,
            (computed % 13) as usize,
        ],
        direct_points: (total % 7) as usize,
        elapsed_ms: u128::from(elapsed),
        sealed: flags & 1 != 0,
        interrupted: flags & 2 != 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_and_corrupted_records_never_misread(
        draw in (0u64..10_000, 0u64..10_000, 0u64..10_000, 0u64..100, 0u64..1 << 40, 0u8..4),
        flip in 0usize..4096,
    ) {
        let snap = snapshot(draw);
        let line = snap.render();
        // The intact record round-trips exactly.
        prop_assert_eq!(parse_progress(&line), Some(snap.clone()));
        // Every prefix cut inside the record reads as nothing. (The cut
        // dropping only the trailing newline still parses — the reader
        // trims — so the loop stops before it.)
        for cut in 0..line.len() - 1 {
            prop_assert_eq!(parse_progress(&line[..cut]), None);
        }
        // A flipped payload byte reads as nothing (checksum) — or, if
        // the flip hits redundant syntax, still as the same snapshot,
        // never different counts.
        let pos = flip % line.len();
        let mut bytes = line.clone().into_bytes();
        bytes[pos] = bytes[pos].wrapping_add(1);
        if let Some(reparsed) = parse_progress(&String::from_utf8_lossy(&bytes)) {
            prop_assert_eq!(reparsed, snap);
        }
    }
}

#[test]
fn reader_tolerates_missing_and_garbage_files() {
    let dir = std::env::temp_dir().join(format!("occache-progress-prop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join("PROGRESS.json");
    assert_eq!(read_progress(&path), None, "missing file");
    std::fs::write(&path, b"{\"not\": \"a progress record\"}\n").expect("write foreign JSON");
    assert_eq!(read_progress(&path), None, "foreign JSON");
    std::fs::write(&path, [0xff, 0xfe, 0x00, 0x41]).expect("write garbage");
    assert_eq!(read_progress(&path), None, "binary garbage");
    std::fs::remove_dir_all(&dir).expect("remove scratch dir");
}
