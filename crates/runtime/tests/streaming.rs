//! Streamed generation must be indistinguishable from materialization:
//! a [`Trace`] backed by a regenerating iterator and one backed by the
//! packed copy of the same stream must agree on the trace fingerprint
//! (and therefore every journal point key), and drive the simulators —
//! direct, one-pass sliced, and the paired two-trace interleave — to
//! bit-identical metrics. This is the contract that lets sweeps fuse
//! generation into simulation without touching any committed artifact.

use occache_core::{simulate, CacheConfig};
use occache_runtime::eval::{evaluate_point, evaluate_slice, Trace};
use occache_runtime::keys::{point_key, trace_fingerprint};
use occache_workloads::{Architecture, Profile, ProgramGenerator};
use proptest::prelude::*;

fn config(net: u64, block: u64, sub: u64) -> CacheConfig {
    CacheConfig::builder()
        .net_size(net)
        .block_size(block)
        .sub_block_size(sub)
        .word_size(2)
        .build()
        .expect("valid geometry")
}

/// A profile the proptest perturbs around the pdp11 baseline; `validate`
/// panics on nonsense, so any generated combination is a legal workload.
fn profile(mem_ref_prob: f64, loop_prob: f64, functions: usize) -> Profile {
    let mut p = Profile::baseline(Architecture::Pdp11);
    p.mem_ref_prob = mem_ref_prob;
    p.loop_prob = loop_prob;
    p.code_functions = functions;
    p.validate();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn streamed_trace_is_indistinguishable_from_materialized(
        seed in 0u64..1_000,
        warmup in 0usize..2_000,
        len in 1_000usize..4_000,
        mem_ref_permille in 50u64..950,
        // pdp11 baseline keeps call/return at 0.10 each, and the
        // branch-kind probabilities must sum below 1.
        loop_permille in 0u64..780,
        functions in 4usize..40,
    ) {
        let p = profile(
            mem_ref_permille as f64 / 1000.0,
            loop_permille as f64 / 1000.0,
            functions,
        );
        let materialized = Trace::new(
            "prop",
            ProgramGenerator::new(p.clone(), seed).take(len),
        );
        let streamed = {
            let p = p.clone();
            Trace::streamed("prop", len, move || ProgramGenerator::new(p.clone(), seed))
        };

        // Identical fingerprints — and, since a point key is derived
        // from the fingerprint, identical journal keys for every config.
        let fp_mat = trace_fingerprint(std::slice::from_ref(&materialized));
        let fp_str = trace_fingerprint(std::slice::from_ref(&streamed));
        prop_assert_eq!(fp_mat, fp_str);

        let configs = [config(256, 16, 8), config(1024, 32, 8), config(64, 8, 4)];
        for c in &configs {
            prop_assert_eq!(
                point_key(c, fp_mat, warmup),
                point_key(c, fp_str, warmup)
            );
            // Bit-identical metrics through the direct simulator.
            let direct_mat = simulate(*c, materialized.iter(), warmup);
            let direct_str = simulate(*c, streamed.iter(), warmup);
            prop_assert_eq!(direct_mat, direct_str);
        }

        // And through the sliced one-pass path, with two traces so the
        // paired (interleaved) engine run is what actually executes.
        let sliced_mat = evaluate_slice(
            &configs,
            &[materialized.clone(), materialized.clone()],
            warmup,
        );
        let sliced_str = evaluate_slice(&configs, &[streamed.clone(), streamed], warmup);
        for (m, s) in sliced_mat.iter().zip(&sliced_str) {
            prop_assert_eq!(m.config, s.config);
            prop_assert!(
                m.miss_ratio == s.miss_ratio
                    && m.traffic_ratio == s.traffic_ratio
                    && m.nibble_traffic_ratio == s.nibble_traffic_ratio
                    && m.redundant_load_fraction == s.redundant_load_fraction
            );
        }

        // The sliced point must also match the per-point average.
        let point = evaluate_point(
            configs[0],
            &[materialized.clone(), materialized],
            warmup,
        );
        prop_assert!(point.miss_ratio == sliced_str[0].miss_ratio);
    }
}
