//! Property: every exposition the instrument [`Registry`] can render is
//! accepted by the strict text parser, and re-rendering the parsed form
//! reproduces the input byte for byte. This is the contract that lets
//! `occache-top` and the CI gates read `/metrics` through
//! [`Exposition::parse`] instead of ad-hoc greps: if the renderer and
//! the parser ever drift, this test fails before a dashboard misreads a
//! scrape.

use occache_runtime::instrument::{Exposition, Registry};
use proptest::prelude::*;

/// One randomly chosen family to add to a registry. The fields are raw
/// draws; `apply` maps them onto one of the sink builder methods.
#[derive(Debug, Clone, Copy)]
struct FamilySpec {
    kind: u8,
    name_idx: u64,
    int_value: u64,
    float_bits: u64,
    labels: u8,
}

impl FamilySpec {
    fn name(&self) -> String {
        format!("occache_prop_{}_total", self.name_idx % 32)
    }

    /// A finite float derived from the draw (quantile-scale magnitudes).
    fn float(&self) -> f64 {
        (self.float_bits % 1_000_000_007) as f64 / 4096.0
    }

    fn apply(&self, reg: &mut Registry) {
        let name = self.name();
        let labels = usize::from(self.labels % 3) + 1;
        match self.kind % 7 {
            0 => {
                reg.counter(&name, "A counter family.", self.int_value);
            }
            1 => {
                reg.gauge(&name, "A gauge family.", self.int_value);
            }
            2 => {
                reg.gauge_seconds(&name, "Seconds since something.", self.float());
            }
            3 => {
                reg.bare(&name, u128::from(self.int_value));
            }
            4 => {
                reg.labeled_gauge(
                    &name,
                    "Per-peer state.",
                    "peer",
                    (0..labels).map(|i| (format!("127.0.0.1:78{i:02}"), self.int_value + i as u64)),
                );
            }
            5 => {
                reg.labeled_counter_seconds(
                    &name,
                    "Cumulative time per worker.",
                    "worker",
                    (0..labels).map(|i| (i.to_string(), self.float() + i as f64)),
                );
            }
            _ => {
                reg.summary(
                    &name,
                    "Latency quantiles.",
                    [("0.5", 1.0), ("0.99", 2.0)]
                        .map(|(q, scale)| (q.to_string(), self.float() * scale)),
                );
                reg.bare(&format!("{name}_count"), u128::from(self.int_value));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_registry_render_round_trips(
        count in 0usize..8,
        specs in collection::vec(
            (0u8..=255, 0u64..1_000_000, 0u64..u64::MAX / 2, 0u64..u64::MAX / 2, 0u8..=255)
                .prop_map(|(kind, name_idx, int_value, float_bits, labels)| FamilySpec {
                    kind,
                    name_idx,
                    int_value,
                    float_bits,
                    labels,
                }),
            8,
        ),
    ) {
        let mut reg = Registry::new();
        for spec in &specs[..count] {
            spec.apply(&mut reg);
        }
        let text = reg.render_prometheus();
        let parsed = Exposition::parse(&text)
            .unwrap_or_else(|e| panic!("render output rejected: {e}\n{text}"));
        prop_assert_eq!(parsed.render(), text);
    }
}
