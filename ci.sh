#!/usr/bin/env bash
# CI gate for the occache workspace.
#
#   ./ci.sh          run everything (lint, tier-1, full workspace tests)
#
# Tier-1 (the must-stay-green bar from ROADMAP.md) is the release build
# plus the root-package test suite; the clippy gate enforces, among the
# default lints, the `unwrap_used` deny in occache-cli/occache-experiments
# (non-test code must return structured errors, not panic).
set -euo pipefail
cd "$(dirname "$0")"

echo "== clippy (warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== tier-1: release build + root-package tests =="
cargo build --release
cargo test -q

echo "== full workspace tests =="
cargo test --workspace -q

echo "== perf smoke: one-pass sweep vs direct simulation =="
# Regenerates a Table-7-style grid both ways, asserts bit-identical
# ratios, and records wall-clock + speedup in BENCH_sweep.json.
cargo build --release -q -p occache-bench --bin perf_smoke
./target/release/perf_smoke

echo "ci.sh: all gates passed"
