#!/usr/bin/env bash
# CI gate for the occache workspace.
#
#   ./ci.sh          run everything (lint, tier-1, full workspace tests)
#
# Tier-1 (the must-stay-green bar from ROADMAP.md) is the release build
# plus the root-package test suite; the clippy gate enforces, among the
# default lints, the `unwrap_used` deny in occache-cli/occache-experiments
# (non-test code must return structured errors, not panic).
set -euo pipefail
cd "$(dirname "$0")"

echo "== rustfmt (formatting is enforced) =="
cargo fmt --all -- --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace -- -D warnings

echo "== tier-1: release build + root-package tests =="
cargo build --release
cargo test -q

echo "== full workspace tests =="
cargo test --workspace -q

echo "== perf smoke: one-pass sweep vs direct simulation =="
# Regenerates a Table-7-style grid three ways (direct, sliced, and
# generation-fused streaming), asserts bit-identical ratios, and
# records wall-clock + throughput in BENCH_sweep.json.
cargo build --release -q -p occache-bench --bin perf_smoke
./target/release/perf_smoke

echo "-- perf trajectory gate: streamed + FIFO throughput vs committed baseline --"
# A real perf regression must fail loudly: each fresh measurement may
# not fall more than 25% below its committed baseline (the timed walls
# are already best-of-N, so scheduler noise is mostly filtered). The
# gate covers both engine families — the streamed LRU fast path and the
# one-pass FIFO engine — so a regression in either fails CI. An
# improvement on every tracked metric rewrites the committed trajectory
# point; anything short of that restores the baseline file so noise
# never erodes the bar.
CURRENT=$(sed -n 's/.*"effective_refs_per_sec": \([0-9]*\).*/\1/p' BENCH_sweep.json)
FIFO_CURRENT=$(sed -n 's/.*"fifo_refs_per_sec": \([0-9]*\).*/\1/p' BENCH_sweep.json)
FIFO_RATIO=$(sed -n 's/.*"fifo_vs_direct": \([0-9.]*\).*/\1/p' BENCH_sweep.json)
BASELINE=$(git show HEAD:BENCH_sweep.json 2>/dev/null \
  | sed -n 's/.*"effective_refs_per_sec": \([0-9]*\).*/\1/p')
FIFO_BASELINE=$(git show HEAD:BENCH_sweep.json 2>/dev/null \
  | sed -n 's/.*"fifo_refs_per_sec": \([0-9]*\).*/\1/p')
[ -n "$CURRENT" ] || { echo "FAIL: no effective_refs_per_sec in BENCH_sweep.json"; exit 1; }
[ -n "$FIFO_CURRENT" ] || { echo "FAIL: no fifo_refs_per_sec in BENCH_sweep.json"; exit 1; }
# The one-pass FIFO engine must beat per-config direct simulation by at
# least 2x on the committed bench grid — below that the engine has lost
# its reason to exist.
[ -n "$FIFO_RATIO" ] || { echo "FAIL: no fifo_vs_direct in BENCH_sweep.json"; exit 1; }
awk -v r="$FIFO_RATIO" 'BEGIN { exit (r >= 2.0) ? 0 : 1 }' \
  || { echo "FAIL: FIFO engine speedup ${FIFO_RATIO}x is below the 2x floor"; exit 1; }
if [ -n "$BASELINE" ]; then
  awk -v c="$CURRENT" -v b="$BASELINE" 'BEGIN { exit (c >= 0.75 * b) ? 0 : 1 }' \
    || { echo "FAIL: effective_refs_per_sec $CURRENT regressed >25% below baseline $BASELINE"; exit 1; }
fi
if [ -n "$FIFO_BASELINE" ]; then
  awk -v c="$FIFO_CURRENT" -v b="$FIFO_BASELINE" 'BEGIN { exit (c >= 0.75 * b) ? 0 : 1 }' \
    || { echo "FAIL: fifo_refs_per_sec $FIFO_CURRENT regressed >25% below baseline $FIFO_BASELINE"; exit 1; }
fi
if [ -z "$BASELINE" ] || [ -z "$FIFO_BASELINE" ]; then
  # No complete committed baseline (first run, or the FIFO fields are
  # new): the fresh measurement becomes the trajectory point.
  echo "   no complete committed baseline; keeping fresh measurement ($CURRENT / $FIFO_CURRENT refs/s)"
elif awk -v c="$CURRENT" -v b="$BASELINE" -v fc="$FIFO_CURRENT" -v fb="$FIFO_BASELINE" \
       'BEGIN { exit (c > b && fc > fb) ? 0 : 1 }'; then
  echo "   improved: $BASELINE -> $CURRENT, fifo $FIFO_BASELINE -> $FIFO_CURRENT refs/s (baseline rewritten)"
else
  git checkout -- BENCH_sweep.json
  echo "   held: $CURRENT / fifo $FIFO_CURRENT refs/s within 25% of baseline (baseline kept)"
fi

echo "== integrity: manifest + verify + supervised fault injection =="
# A real Table 7 run into a scratch results dir, then occache-verify on
# it: manifest hashes, strict journal scan, and sampled bit-exact
# re-simulation through the direct simulator. A single flipped byte in
# either a CSV or a journal record must fail the gate; a re-run must
# repair the damage; an injected hang must surface as a Timeout in
# RUN_REPORT.json; and a second run against a held checkpoint lock must
# fail fast with a diagnostic instead of corrupting the journal.
INT_DIR=target/ci-integrity
INT_REFS=20000
rm -rf "$INT_DIR"
cargo build --release -q -p occache-experiments --bin table7
cargo build --release -q -p occache-cli --bin occache-verify
OCCACHE_RESULTS="$INT_DIR" OCCACHE_REFS="$INT_REFS" ./target/release/table7
test -f "$INT_DIR/MANIFEST.json" || { echo "FAIL: no MANIFEST.json"; exit 1; }
test -f "$INT_DIR/RUN_REPORT.json" || { echo "FAIL: no RUN_REPORT.json"; exit 1; }
./target/release/occache-verify --dir "$INT_DIR" --refs "$INT_REFS" --sample 2

echo "-- a flipped CSV byte must fail verify --"
CSV=$(ls "$INT_DIR"/*.csv | head -1)
printf 'X' | dd of="$CSV" bs=1 seek=5 count=1 conv=notrunc status=none
if ./target/release/occache-verify --dir "$INT_DIR" --refs "$INT_REFS" --sample 2 >/dev/null; then
  echo "FAIL: verify passed on a corrupted CSV"; exit 1
fi
# A re-emit regenerates the CSV from the intact journal and heals it.
OCCACHE_RESULTS="$INT_DIR" OCCACHE_REFS="$INT_REFS" ./target/release/table7
./target/release/occache-verify --dir "$INT_DIR" --refs "$INT_REFS" --sample 2

echo "-- a flipped journal byte must fail verify, and a re-run must repair it --"
JOURNAL="$INT_DIR/.checkpoint/table7.jsonl"
printf 'X' | dd of="$JOURNAL" bs=1 seek=12 count=1 conv=notrunc status=none
if ./target/release/occache-verify --dir "$INT_DIR" --refs "$INT_REFS" --sample 2 >/dev/null; then
  echo "FAIL: verify passed on a corrupted journal"; exit 1
fi
OCCACHE_RESULTS="$INT_DIR" OCCACHE_REFS="$INT_REFS" ./target/release/table7
./target/release/occache-verify --dir "$INT_DIR" --refs "$INT_REFS" --sample 2

echo "-- an injected hang must be reported as a timeout --"
OCCACHE_RESULTS="$INT_DIR" OCCACHE_REFS="$INT_REFS" OCCACHE_FRESH=1 \
  OCCACHE_POINT_TIMEOUT=0.5 OCCACHE_FAULT_POINT=hang:8,4 ./target/release/table7
grep -Eq '"timed_out": [1-9]' "$INT_DIR/RUN_REPORT.json" \
  || { echo "FAIL: hang not reported as a timeout in RUN_REPORT.json"; exit 1; }

echo "-- a held checkpoint lock must fail fast with a diagnostic --"
echo "garbage-holder" > "$INT_DIR/.checkpoint/LOCK"
set +e
LOCK_ERR=$(OCCACHE_RESULTS="$INT_DIR" OCCACHE_REFS="$INT_REFS" ./target/release/table7 2>&1)
LOCK_RC=$?
set -e
if [ "$LOCK_RC" -eq 0 ]; then
  echo "FAIL: run succeeded against a held lock"; exit 1
fi
echo "$LOCK_ERR" | grep -qi "lock" \
  || { echo "FAIL: lock contention diagnostic missing: $LOCK_ERR"; exit 1; }
rm -f "$INT_DIR/.checkpoint/LOCK"

echo "== policy gate: FIFO Table 7 rides the one-pass engines end to end =="
# A full Table 7 run down the FIFO axis must compute every point on a
# slice engine — zero direct-simulator fallbacks — and the same run with
# the FIFO engine kill-switched must take the direct path instead. Both
# facts come from the RUN_METRICS.prom sidecar through occache-top's
# strict exposition parser, not from greps over JSON.
cargo build --release -q -p occache-top --bin occache-top
POL_DIR=target/ci-policy
POL_OFF_DIR=target/ci-policy-direct
rm -rf "$POL_DIR" "$POL_OFF_DIR"
OCCACHE_RESULTS="$POL_DIR" OCCACHE_REFS="$INT_REFS" OCCACHE_REPLACEMENT=fifo \
  ./target/release/table7
POL_DIRECT=$(./target/release/occache-top --parse-metrics "$POL_DIR/RUN_METRICS.prom" \
               --get occache_run_points_direct_total)
[ "$POL_DIRECT" = "0" ] \
  || { echo "FAIL: FIFO Table 7 fell back to direct simulation for $POL_DIRECT points"; exit 1; }
POL_FIFO=$(./target/release/occache-top --parse-metrics "$POL_DIR/RUN_METRICS.prom" \
             --get occache_run_points_engine_fifo_total)
[ -n "$POL_FIFO" ] && [ "$POL_FIFO" -ge 1 ] \
  || { echo "FAIL: FIFO Table 7 recorded no FIFO-engine points (got '$POL_FIFO')"; exit 1; }
# The per-policy kill-switch is the control: with the FIFO engine
# disabled the identical run must go direct, and the artifacts must
# still come out byte-identical.
OCCACHE_RESULTS="$POL_OFF_DIR" OCCACHE_REFS="$INT_REFS" OCCACHE_REPLACEMENT=fifo \
  OCCACHE_NO_MULTISIM=fifo,random ./target/release/table7
POL_OFF_DIRECT=$(./target/release/occache-top --parse-metrics "$POL_OFF_DIR/RUN_METRICS.prom" \
                   --get occache_run_points_direct_total)
[ -n "$POL_OFF_DIRECT" ] && [ "$POL_OFF_DIRECT" -ge 1 ] \
  || { echo "FAIL: OCCACHE_NO_MULTISIM=fifo,random did not force the direct path"; exit 1; }
for F in "$POL_DIR"/*.csv "$POL_DIR/MANIFEST.json"; do
  cmp "$F" "$POL_OFF_DIR/$(basename "$F")" \
    || { echo "FAIL: $(basename "$F") differs between FIFO engine and direct runs"; exit 1; }
done
echo "   FIFO table7: $POL_FIFO engine points, 0 direct; kill-switched run went direct and matched byte-for-byte"

echo "== serving-mode gate: occache-serve driven by occache-loadgen =="
# The root package does not depend on the serve or cli crates, so the
# tier-1 `cargo build --release` does not refresh these binaries.
cargo build --release -q -p occache-serve --bin occache-serve
cargo build --release -q -p occache-cli --bin occache-loadgen
# The dashboard doubles as CI's strict metrics parser (--parse-metrics),
# used by the chaos/recovery/cluster gates below in place of raw greps.
cargo build --release -q -p occache-top --bin occache-top
SERVE_LOG=target/ci-serve.log
SERVE_BENCH=target/ci-BENCH_serve.json
rm -f "$SERVE_LOG" "$SERVE_BENCH"
OCCACHE_SERVE_ADDR=127.0.0.1:0 OCCACHE_SERVE_WORKERS=2 \
  ./target/release/occache-serve > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$SERVE_LOG" 2>/dev/null && break
  sleep 0.1
done
SERVE_ADDR=$(sed -n 's/^occache-serve listening on //p' "$SERVE_LOG")
[ -n "$SERVE_ADDR" ] || { echo "FAIL: occache-serve never came up"; cat "$SERVE_LOG"; exit 1; }
# --check fails unless the repeated point is a cache hit with
# bit-identical metrics and /metrics scrapes clean.
./target/release/occache-loadgen --addr "$SERVE_ADDR" --refs 30000 --check --out "$SERVE_BENCH"
grep -q '"speedup"' "$SERVE_BENCH" \
  || { echo "FAIL: $SERVE_BENCH is missing the speedup figure"; exit 1; }
# Batching must actually pay: the coalesced sweep has to beat
# one-point-per-request by at least 2x.
SPEEDUP=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' "$SERVE_BENCH")
[ -n "$SPEEDUP" ] || { echo "FAIL: unparseable speedup in $SERVE_BENCH"; exit 1; }
awk -v s="$SPEEDUP" 'BEGIN { exit (s >= 2.0) ? 0 : 1 }' \
  || { echo "FAIL: batched speedup ${SPEEDUP}x is below the 2x floor"; exit 1; }
echo "   batched sweep speedup: ${SPEEDUP}x (floor 2x)"

echo "-- dual front-end bit-identity: batch journal vs served sweep --"
# The same tiny grid through both front-ends of occache-runtime: the
# batch harness journals each point with shortest-exact floats keyed by
# the content-addressed point key, and /v1/sweep responses carry the
# same key and the same formatting — so every served (key, metrics)
# tuple must appear verbatim in the batch journal.
DUAL_DIR=target/ci-dual
DUAL_REFS=2000
rm -rf "$DUAL_DIR"
OCCACHE_RESULTS="$DUAL_DIR" OCCACHE_REFS="$DUAL_REFS" ./target/release/table7
sed -nE 's/.*"key":"([0-9a-f]{16})","miss":([^,]*),"traffic":([^,]*),"nibble":([^,]*),"redundant":([^,}]*).*/\1 \2 \3 \4 \5/p' \
  "$DUAL_DIR/.checkpoint/table7.jsonl" | sort > target/ci-dual-batch.txt
curl -s -X POST "http://$SERVE_ADDR/v1/sweep" \
  -d "{\"model\":\"pdp11\",\"refs\":$DUAL_REFS,\"grid\":{\"nets\":[64,256,1024]}}" \
  > target/ci-dual-serve.json
grep -oE '"key":"[0-9a-f]{16}","cached":(true|false),"config":\{[^}]*\},"gross_size":[0-9]+,"miss_ratio":[^,]*,"traffic_ratio":[^,]*,"nibble_traffic_ratio":[^,]*,"redundant_load_fraction":[^,}]*' \
  target/ci-dual-serve.json \
  | sed -E 's/"key":"([0-9a-f]{16})".*"miss_ratio":([^,]*),"traffic_ratio":([^,]*),"nibble_traffic_ratio":([^,]*),"redundant_load_fraction":(.*)/\1 \2 \3 \4 \5/' \
  | sort > target/ci-dual-serve.txt
SERVED=$(wc -l < target/ci-dual-serve.txt)
[ "$SERVED" -ge 10 ] || { echo "FAIL: served sweep returned only $SERVED points"; exit 1; }
MISSING=$(comm -23 target/ci-dual-serve.txt target/ci-dual-batch.txt)
if [ -n "$MISSING" ]; then
  echo "FAIL: served metrics not bit-identical to the batch journal:"
  echo "$MISSING"
  exit 1
fi
echo "   $SERVED served points bit-identical to the batch journal"

kill -INT "$SERVE_PID"
set +e
wait "$SERVE_PID"
SERVE_RC=$?
set -e
if [ "$SERVE_RC" -ne 0 ]; then
  echo "FAIL: occache-serve did not shut down cleanly on SIGINT (exit $SERVE_RC)"
  cat "$SERVE_LOG"; exit 1
fi
grep -q "shut down cleanly" "$SERVE_LOG" \
  || { echo "FAIL: graceful-shutdown message missing"; cat "$SERVE_LOG"; exit 1; }

echo "== chaos gate: deterministic fault injection vs the resilient loadgen =="
# The server tears every 5th response write and drops every 7th
# connection (OCCACHE_SERVE_FAULT); the loadgen retries transport faults
# and retryable structured errors. The run must end with every request
# answered — correctly — or fail; `timeout` bounds the whole run so a
# hung connection past its deadline fails the gate rather than wedging CI.
CHAOS_LOG=target/ci-chaos.log
CHAOS_BENCH=target/ci-BENCH_chaos.json
CHAOS_JOURNAL=target/ci-chaos-journal
rm -rf "$CHAOS_LOG" "$CHAOS_BENCH" "$CHAOS_JOURNAL" target/ci-chaos-*.txt
mkdir -p "$CHAOS_JOURNAL"
OCCACHE_SERVE_ADDR=127.0.0.1:0 OCCACHE_SERVE_WORKERS=2 \
  OCCACHE_SERVE_FAULT=torn-write:5,drop-conn:7 \
  OCCACHE_SERVE_JOURNAL="$CHAOS_JOURNAL" \
  ./target/release/occache-serve > "$CHAOS_LOG" 2>&1 &
CHAOS_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$CHAOS_LOG" 2>/dev/null && break
  sleep 0.1
done
CHAOS_ADDR=$(sed -n 's/^occache-serve listening on //p' "$CHAOS_LOG")
[ -n "$CHAOS_ADDR" ] || { echo "FAIL: chaotic occache-serve never came up"; cat "$CHAOS_LOG"; exit 1; }
timeout 180 ./target/release/occache-loadgen --addr "$CHAOS_ADDR" --refs 20000 \
    --retries 12 --timeout 30 --check \
    --out "$CHAOS_BENCH" --digest target/ci-chaos-before.txt \
  || { echo "FAIL: loadgen did not complete under chaos"; cat "$CHAOS_LOG"; exit 1; }
# The client must actually have exercised its retry path...
grep -Eq '"retries": [1-9]' "$CHAOS_BENCH" \
  || { echo "FAIL: chaos run finished without a single client retry"; cat "$CHAOS_BENCH"; exit 1; }
# ...and the injected fault counters must be visible on /metrics (the
# scrape itself can be torn, so allow a few attempts). The strict
# exposition parser replaces the old greps: a torn scrape now fails the
# parse instead of silently matching half a line.
METRICS_OK=
for _ in $(seq 1 6); do
  if curl -s "http://$CHAOS_ADDR/metrics" > target/ci-chaos-metrics.txt 2>/dev/null \
     && TORN=$(./target/release/occache-top --parse-metrics target/ci-chaos-metrics.txt \
                 --get occache_fault_torn_write_injected_total) \
     && DROP=$(./target/release/occache-top --parse-metrics target/ci-chaos-metrics.txt \
                 --get occache_fault_drop_conn_injected_total) \
     && [ "$TORN" -ge 1 ] && [ "$DROP" -ge 1 ]; then
    METRICS_OK=1; break
  fi
  sleep 0.2
done
[ -n "$METRICS_OK" ] \
  || { echo "FAIL: injected fault counters missing from /metrics"; cat target/ci-chaos-metrics.txt; exit 1; }
echo "   chaos survived: $(sed -n 's/.*"resilience": {\(.*\)}.*/\1/p' "$CHAOS_BENCH")"

echo "-- crash recovery: kill -9, restart, bit-identical answers from the journal --"
# No graceful shutdown: the write-behind journal alone must carry every
# computed point across the crash.
kill -9 "$CHAOS_PID"
set +e; wait "$CHAOS_PID" 2>/dev/null; set -e
RECOVER_LOG=target/ci-recover.log
RECOVER_BENCH=target/ci-BENCH_recover.json
rm -f "$RECOVER_LOG" "$RECOVER_BENCH"
OCCACHE_SERVE_ADDR=127.0.0.1:0 OCCACHE_SERVE_WORKERS=2 \
  OCCACHE_SERVE_JOURNAL="$CHAOS_JOURNAL" \
  ./target/release/occache-serve > "$RECOVER_LOG" 2>&1 &
RECOVER_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$RECOVER_LOG" 2>/dev/null && break
  sleep 0.1
done
RECOVER_ADDR=$(sed -n 's/^occache-serve listening on //p' "$RECOVER_LOG")
[ -n "$RECOVER_ADDR" ] || { echo "FAIL: restarted occache-serve never came up"; cat "$RECOVER_LOG"; exit 1; }
grep -Eq "crash recovery: [1-9][0-9]* point" "$RECOVER_LOG" \
  || { echo "FAIL: restart did not report journal recovery"; cat "$RECOVER_LOG"; exit 1; }
timeout 120 ./target/release/occache-loadgen --addr "$RECOVER_ADDR" --refs 20000 \
    --retries 8 --timeout 30 --check \
    --out "$RECOVER_BENCH" --digest target/ci-chaos-after.txt \
  || { echo "FAIL: loadgen failed against the recovered server"; cat "$RECOVER_LOG"; exit 1; }
cmp target/ci-chaos-before.txt target/ci-chaos-after.txt \
  || { echo "FAIL: post-crash answers are not bit-identical to pre-crash"; \
       diff target/ci-chaos-before.txt target/ci-chaos-after.txt | head; exit 1; }
# Recovery means recall, not recompute: every point must have come from
# the journal-warmed cache.
curl -s "http://$RECOVER_ADDR/metrics" > target/ci-recover-metrics.txt
RECOMPUTED=$(./target/release/occache-top --parse-metrics target/ci-recover-metrics.txt \
               --get occache_points_computed_total)
[ "$RECOMPUTED" = "0" ] \
  || { echo "FAIL: recovered server recomputed $RECOMPUTED points instead of serving the journal"; \
       exit 1; }
echo "   $(wc -l < target/ci-chaos-after.txt) points bit-identical across kill -9"
kill -INT "$RECOVER_PID"
set +e; wait "$RECOVER_PID"; RECOVER_RC=$?; set -e
[ "$RECOVER_RC" -eq 0 ] \
  || { echo "FAIL: recovered server did not shut down cleanly"; cat "$RECOVER_LOG"; exit 1; }

echo "== cluster gate: three nodes + router, peer chaos, one node killed =="
# A three-node tier behind occache-route. The router's peer calls run
# under drop-peer chaos; the open-loop loadgen routes client-side with
# the same rendezvous hash and must meet its p99 SLO; results must be
# bit-identical to a fresh single-node run; node 3 is SIGTERMed and the
# router's breaker must mark it down while every request keeps getting
# an answer; all four processes must drain cleanly on SIGTERM.
cargo build --release -q -p occache-serve --bin occache-route
CL_DIR=target/ci-cluster
rm -rf "$CL_DIR"
mkdir -p "$CL_DIR"
CL_PORTS=$(./target/release/occache-loadgen --free-ports 5)
CL_P1=$(echo "$CL_PORTS" | sed -n 1p); CL_P2=$(echo "$CL_PORTS" | sed -n 2p)
CL_P3=$(echo "$CL_PORTS" | sed -n 3p); CL_PR=$(echo "$CL_PORTS" | sed -n 4p)
CL_PS=$(echo "$CL_PORTS" | sed -n 5p)
CL_PEERS="127.0.0.1:$CL_P1,127.0.0.1:$CL_P2,127.0.0.1:$CL_P3"
CL_PIDS=()
for P in "$CL_P1" "$CL_P2" "$CL_P3"; do
  OCCACHE_SERVE_ADDR="127.0.0.1:$P" OCCACHE_PEERS="$CL_PEERS" \
    OCCACHE_SELF="127.0.0.1:$P" OCCACHE_SERVE_WORKERS=2 \
    OCCACHE_SERVE_JOURNAL="$CL_DIR/j$P" \
    ./target/release/occache-serve > "$CL_DIR/node$P.log" 2>&1 &
  CL_PIDS+=($!)
done
OCCACHE_PEERS="$CL_PEERS" OCCACHE_ROUTE_ADDR="127.0.0.1:$CL_PR" \
  OCCACHE_SERVE_FAULT=drop-peer:2 \
  ./target/release/occache-route > "$CL_DIR/route.log" 2>&1 &
CL_ROUTE_PID=$!
for P in "$CL_P1" "$CL_P2" "$CL_P3" "$CL_PR"; do
  CL_UP=
  for _ in $(seq 1 100); do
    if curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$P/v1/health" \
       | grep -q 200; then CL_UP=1; break; fi
    sleep 0.1
  done
  [ -n "$CL_UP" ] || { echo "FAIL: 127.0.0.1:$P never became healthy"; cat "$CL_DIR"/*.log; exit 1; }
done

echo "-- open-loop loadgen across the shards, p99 SLO asserted --"
timeout 180 ./target/release/occache-loadgen --peers "$CL_PEERS" \
    --rate 40 --duration 5 --keyspace 32 --refs 20000 --slo-p99-ms 5000 \
    --out "$CL_DIR/bench.json" --digest "$CL_DIR/cluster.digest" \
  || { echo "FAIL: cluster loadgen failed or missed its SLO"; cat "$CL_DIR"/*.log; exit 1; }
grep -q '"slo_met": true' "$CL_DIR/bench.json" \
  || { echo "FAIL: bench entry does not record the SLO as met"; cat "$CL_DIR/bench.json"; exit 1; }

echo "-- bit-identity: the same keyspace on a fresh single node --"
OCCACHE_SERVE_ADDR="127.0.0.1:$CL_PS" OCCACHE_SERVE_WORKERS=2 \
  ./target/release/occache-serve > "$CL_DIR/single.log" 2>&1 &
CL_SINGLE_PID=$!
for _ in $(seq 1 100); do
  curl -s -o /dev/null "http://127.0.0.1:$CL_PS/v1/health" && break
  sleep 0.1
done
timeout 180 ./target/release/occache-loadgen --peers "127.0.0.1:$CL_PS" \
    --rate 40 --duration 5 --keyspace 32 --refs 20000 \
    --out "$CL_DIR/bench_single.json" --digest "$CL_DIR/single.digest" \
  || { echo "FAIL: single-node comparison run failed"; cat "$CL_DIR/single.log"; exit 1; }
cmp "$CL_DIR/cluster.digest" "$CL_DIR/single.digest" \
  || { echo "FAIL: cluster digests differ from the single-node run"; \
       diff "$CL_DIR/cluster.digest" "$CL_DIR/single.digest" | head; exit 1; }
echo "   $(wc -l < "$CL_DIR/cluster.digest") points bit-identical across 3-node and 1-node runs"
kill -INT "$CL_SINGLE_PID"
set +e; wait "$CL_SINGLE_PID"; set -e

echo "-- scatter/merge through the router under drop-peer chaos --"
curl -s -X POST "http://127.0.0.1:$CL_PR/v1/sweep" \
  -d '{"model":"pdp11","refs":20000,"grid":{"nets":[256,512,1024]}}' \
  > "$CL_DIR/router_sweep.json"
grep -q '"failures":\[\]' "$CL_DIR/router_sweep.json" \
  || { echo "FAIL: routed sweep reported failures"; head -c 600 "$CL_DIR/router_sweep.json"; exit 1; }
curl -s "http://127.0.0.1:$CL_PR/metrics" > "$CL_DIR/route_metrics.txt"
grep -Eq 'occache_fault_drop_peer_injected_total [1-9]' "$CL_DIR/route_metrics.txt" \
  || { echo "FAIL: drop-peer chaos never fired on the router"; exit 1; }

echo "-- peer warm fill: a node must fetch remote-owned points, not recompute --"
curl -s -X POST "http://127.0.0.1:$CL_P1/v1/sweep" \
  -d '{"model":"pdp11","refs":20000,"grid":{"nets":[256,512,1024]}}' > /dev/null
curl -s "http://127.0.0.1:$CL_P1/metrics" > "$CL_DIR/node1_metrics.txt"
FILLS=$(./target/release/occache-top --parse-metrics "$CL_DIR/node1_metrics.txt" \
          --get occache_peer_fill_points_total)
[ -n "$FILLS" ] && [ "$FILLS" -ge 1 ] \
  || { echo "FAIL: no peer fills recorded on node 1 (got '$FILLS')"; \
       grep occache_peer "$CL_DIR/node1_metrics.txt"; exit 1; }

echo "-- node 3 SIGTERMed: breaker must trip, requests must keep working --"
kill -TERM "${CL_PIDS[2]}"
set +e; wait "${CL_PIDS[2]}"; CL_N3_RC=$?; set -e
[ "$CL_N3_RC" -eq 0 ] \
  || { echo "FAIL: node 3 did not drain cleanly on SIGTERM"; cat "$CL_DIR/node$CL_P3.log"; exit 1; }
sleep 2.5  # two failed probe rounds trip the router's breaker
CL_ANSWERED=
for _ in $(seq 1 10); do
  if curl -s -X POST "http://127.0.0.1:$CL_PR/v1/simulate" \
       -d '{"model":"pdp11","refs":20000,"config":{"net":256,"block":16,"sub":8}}' \
     | grep -q '"miss_ratio"'; then CL_ANSWERED=1; break; fi
  sleep 0.3
done
[ -n "$CL_ANSWERED" ] \
  || { echo "FAIL: router stopped answering after losing one node"; cat "$CL_DIR/route.log"; exit 1; }
curl -s "http://127.0.0.1:$CL_PR/metrics" > "$CL_DIR/route_metrics2.txt"
DOWNS=$(./target/release/occache-top --parse-metrics "$CL_DIR/route_metrics2.txt" \
          --get occache_peer_down_total)
[ -n "$DOWNS" ] && [ "$DOWNS" -ge 1 ] \
  || { echo "FAIL: router never marked the dead node down (got '$DOWNS')"; \
       grep occache_peer "$CL_DIR/route_metrics2.txt"; exit 1; }
N3_STATE=$(./target/release/occache-top --parse-metrics "$CL_DIR/route_metrics2.txt" \
             --get "occache_peer_state{peer=\"127.0.0.1:$CL_P3\"}")
[ "$N3_STATE" = "0" ] \
  || { echo "FAIL: dead node not shown as down in occache_peer_state (got '$N3_STATE')"; \
       grep occache_peer_state "$CL_DIR/route_metrics2.txt"; exit 1; }

echo "-- clean SIGTERM drain of the remaining processes --"
for PID in "$CL_ROUTE_PID" "${CL_PIDS[0]}" "${CL_PIDS[1]}"; do
  kill -TERM "$PID"
  set +e; wait "$PID"; CL_RC=$?; set -e
  [ "$CL_RC" -eq 0 ] || { echo "FAIL: pid $PID exited $CL_RC on SIGTERM"; cat "$CL_DIR"/*.log; exit 1; }
done
grep -q "shut down cleanly" "$CL_DIR/route.log" \
  || { echo "FAIL: router drain message missing"; cat "$CL_DIR/route.log"; exit 1; }
echo "   3-node cluster survived chaos, fill, and a node kill"

echo "== observability gate: occache-top over a live sweep and a live node =="
# One dashboard frame, built entirely from real sources: the atomically
# flushed progress feed of a sweep that is still running, the
# /v1/status + /metrics of a live serve node (through the strict
# exposition parser), and the checkpoint journals on disk. The gate
# asserts every pane end to end, then re-checks the sealed state after
# the sweep lands.
OBS_DIR=target/ci-obs
OBS_LOG=target/ci-obs-serve.log
rm -rf "$OBS_DIR" "$OBS_LOG" target/ci-obs-frame.txt target/ci-obs-final.txt
OBS_PORT=$(./target/release/occache-loadgen --free-ports 1)
# A self-entry in OCCACHE_PEERS makes the node export occache_peer_state,
# so the frame carries a breaker column to assert on.
OCCACHE_SERVE_ADDR="127.0.0.1:$OBS_PORT" OCCACHE_SERVE_WORKERS=2 \
  OCCACHE_PEERS="127.0.0.1:$OBS_PORT" OCCACHE_SELF="127.0.0.1:$OBS_PORT" \
  ./target/release/occache-serve > "$OBS_LOG" 2>&1 &
OBS_PID=$!
for _ in $(seq 1 100); do
  curl -s -o /dev/null "http://127.0.0.1:$OBS_PORT/v1/health" && break
  sleep 0.1
done
# Warm the node so the latency quantiles exist, then start a sweep that
# flushes the progress feed after every point.
curl -s -X POST "http://127.0.0.1:$OBS_PORT/v1/simulate" \
  -d '{"model":"pdp11","refs":2000,"config":{"net":256,"block":16,"sub":8}}' > /dev/null
OCCACHE_RESULTS="$OBS_DIR" OCCACHE_REFS=100000 OCCACHE_PROGRESS_EVERY=1 \
  ./target/release/table7 > /dev/null 2>&1 &
OBS_SWEEP_PID=$!
OBS_LIVE=
for _ in $(seq 1 300); do
  ./target/release/occache-top --once --plain --no-bench \
    --results "$OBS_DIR" --metrics "127.0.0.1:$OBS_PORT" > target/ci-obs-frame.txt || true
  if grep -q " table7 " target/ci-obs-frame.txt \
     && grep -q "live" target/ci-obs-frame.txt \
     && grep -Eq "computed [1-9]" target/ci-obs-frame.txt; then
    OBS_LIVE=1; break
  fi
  kill -0 "$OBS_SWEEP_PID" 2>/dev/null || break
  sleep 0.1
done
[ -n "$OBS_LIVE" ] \
  || { echo "FAIL: occache-top never showed a live phase with computed points"; \
       cat target/ci-obs-frame.txt; exit 1; }
# The same frame must carry the live node's ops fields.
grep -q "occache-serve" target/ci-obs-frame.txt \
  || { echo "FAIL: serve node missing from the ops pane"; cat target/ci-obs-frame.txt; exit 1; }
grep -Eq "queue [0-9]" target/ci-obs-frame.txt \
  || { echo "FAIL: queue depth missing from the ops pane"; cat target/ci-obs-frame.txt; exit 1; }
grep -q "peers: 127.0.0.1:$OBS_PORT up" target/ci-obs-frame.txt \
  || { echo "FAIL: breaker state missing from the ops pane"; cat target/ci-obs-frame.txt; exit 1; }
set +e; wait "$OBS_SWEEP_PID"; OBS_SWEEP_RC=$?; set -e
[ "$OBS_SWEEP_RC" -eq 0 ] || { echo "FAIL: observability sweep exited $OBS_SWEEP_RC"; exit 1; }
# After the run: feed sealed, report complete, journal healthy in the
# run browser.
./target/release/occache-top --once --plain --no-bench \
  --results "$OBS_DIR" > target/ci-obs-final.txt
grep -q "sealed" target/ci-obs-final.txt \
  || { echo "FAIL: progress feed not sealed after the sweep"; cat target/ci-obs-final.txt; exit 1; }
grep -q "report: complete" target/ci-obs-final.txt \
  || { echo "FAIL: RUN_REPORT not complete after the sweep"; cat target/ci-obs-final.txt; exit 1; }
grep -Eq "table7 .* ok" target/ci-obs-final.txt \
  || { echo "FAIL: sealed journal not shown healthy in the run browser"; \
       cat target/ci-obs-final.txt; exit 1; }
kill -INT "$OBS_PID"
set +e; wait "$OBS_PID"; OBS_RC=$?; set -e
[ "$OBS_RC" -eq 0 ] \
  || { echo "FAIL: observability node did not shut down cleanly"; cat "$OBS_LOG"; exit 1; }
echo "   live frame asserted: sweep progress, ops fields, sealed run browser"

echo "ci.sh: all gates passed"
