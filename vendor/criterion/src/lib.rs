//! Vendored, offline subset of the `criterion` crate API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of criterion 0.5 the workspace benches use: `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple warm-up + timed-batch
//! loop printing mean wall-clock time (and throughput when configured) —
//! adequate for relative tracking, without criterion's statistics.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter's rendering.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. trace references) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Collects timing for one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it for a fixed iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass, untimed.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(id, sample_size, None, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration budget per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares units processed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalises reports here; a no-op shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, tp: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if bencher.iters == 0 || bencher.elapsed.is_zero() {
        println!("{id:<40} (no measurement)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let rate = match tp {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / per_iter),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!("{id:<40} {:>12.3} ms/iter{rate}", per_iter * 1e3);
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0;
        group.bench_function("count", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1));
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        assert_eq!(runs, 1);
    }
}
