//! Vendored, offline subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the small slice of `rand` 0.8 the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic, seedable, and of
//! ample statistical quality for the workload models. It is **not** the
//! same stream as upstream `StdRng` (ChaCha12), so absolute trace contents
//! differ from builds against crates.io rand; all workspace invariants are
//! seed-stability within a build, which this preserves.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an `RngCore` (the `Standard`
/// distribution of upstream rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Uniform draw from `0..span` (`span > 0`) by widening multiply, which
/// keeps bias below 2^-64 for the small spans used here.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The named generators of upstream rand.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for upstream
    /// `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand a 64-bit seed into full state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: upstream's small fast generator, same engine here.
    pub type SmallRng = StdRng;
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "{buckets:?}");
        }
    }
}
