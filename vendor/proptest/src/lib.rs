//! Vendored, offline subset of the `proptest` crate API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of proptest 1.x the workspace tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_filter_map` / `prop_filter`, range and
//! tuple strategies, [`collection::vec`], the [`proptest!`] macro and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test seed; there is **no shrinking** — a failing case panics with
//! the generated inputs' `Debug` rendering instead.

use rand::rngs::StdRng;

/// How many consecutive rejections (`prop_filter_map` returning `None`)
/// abort a test as over-constrained.
const MAX_REJECTS: u32 = 65_536;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value; `None` is a rejection (filtered out).
    fn generate(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps through `f`, rejecting values for which `f` returns `None`.
    /// `whence` names the constraint in diagnostics.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Keeps only values satisfying `pred`.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f: pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                use rand::Rng as _;
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Option<$t> {
                use rand::Rng as _;
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// A strategy for `Vec`s of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one proptest-style test function: builds a deterministic RNG
/// from the test name, draws `config.cases` accepted cases, and panics
/// with the rendered inputs on the first failure.
pub fn run_cases<S, F>(name: &str, config: &ProptestConfig, strategy: &S, mut check: F)
where
    S: Strategy,
    S::Value: core::fmt::Debug,
    F: FnMut(S::Value),
{
    use rand::SeedableRng as _;
    // FNV-1a over the test name: stable per test, independent of ordering.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0u32;
    let mut rejects = 0u32;
    while accepted < config.cases {
        match strategy.generate(&mut rng) {
            None => {
                rejects += 1;
                assert!(
                    rejects < MAX_REJECTS,
                    "{name}: strategy rejected {rejects} draws; over-constrained"
                );
            }
            Some(value) => {
                accepted += 1;
                let rendered = format!("{value:?}");
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(value)));
                if let Err(panic) = result {
                    eprintln!("proptest {name}: case {accepted} failed with input {rendered}");
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::ProptestConfig = $cfg;
            let __pt_strategy = ($($strat,)+);
            $crate::run_cases(
                stringify!($name),
                &__pt_config,
                &__pt_strategy,
                |($($arg,)+)| $body,
            );
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_has_requested_len(v in collection::vec((0u64..8, 0usize..3), 17)) {
            prop_assert_eq!(v.len(), 17);
        }

        #[test]
        fn filter_map_applies(x in (0u64..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v))) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_applies(x in (0u64..10).prop_map(|v| v * 3)) {
            prop_assert_eq!(x % 3, 0);
        }
    }

    #[test]
    fn failing_case_panics() {
        let result = std::panic::catch_unwind(|| {
            super::run_cases(
                "always_fails",
                &ProptestConfig::with_cases(4),
                &(0u64..10,),
                |(_x,)| panic!("boom"),
            );
        });
        assert!(result.is_err());
    }
}
