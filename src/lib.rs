#![warn(missing_docs)]

//! # occache — on-chip microprocessor cache evaluation
//!
//! A from-scratch Rust reproduction of Hill & Smith, *"Experimental
//! Evaluation of On-Chip Microprocessor Cache Memories"* (ISCA 1984).
//!
//! This facade crate re-exports the workspace libraries:
//!
//! * [`trace`] — address-trace substrate (records, streams, I/O, statistics),
//! * [`core`] — the sub-block (sector) cache simulator and its metrics,
//! * [`workloads`] — synthetic PDP-11 / Z8000 / VAX-11 / System/370 workload
//!   models standing in for the paper's 1984 trace tapes,
//! * [`riscii`] — the RISC II instruction-cache chip of §2.3 (remote
//!   program counter, code compaction),
//! * [`experiments`] — the harness that regenerates every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use occache::core::{CacheConfig, SubBlockCache};
//! use occache::trace::TraceSource;
//! use occache::workloads::{Architecture, WorkloadSpec};
//!
//! // A 1024-byte cache with 16-byte blocks and 8-byte sub-blocks — the
//! // paper's headline "16,8 1024-byte" configuration.
//! let config = CacheConfig::builder()
//!     .net_size(1024)
//!     .block_size(16)
//!     .sub_block_size(8)
//!     .word_size(2)
//!     .build()?;
//! let mut cache = SubBlockCache::new(config);
//!
//! let mut trace = WorkloadSpec::pdp11_ed().generator(42);
//! for _ in 0..10_000 {
//!     let r = trace.next_ref().expect("generators are endless");
//!     cache.access(r.address(), r.kind());
//! }
//! let metrics = cache.metrics();
//! assert!(metrics.miss_ratio() > 0.0 && metrics.miss_ratio() < 1.0);
//! # Ok::<(), occache::core::ConfigError>(())
//! ```

pub use occache_core as core;
pub use occache_experiments as experiments;
pub use occache_riscii as riscii;
pub use occache_trace as trace;
pub use occache_workloads as workloads;
