//! Property-based equivalence for the non-LRU slice engines: the
//! one-pass FIFO and seeded-Random engines must produce metrics
//! **exactly equal** (every counter, hence every derived ratio) to the
//! direct simulator run once per configuration — across random
//! geometries (including sub-block < block), random reference streams,
//! random warm-up prefixes and, for Random, random seeds.
//!
//! Sibling of `tests/multisim_equiv.rs`, which pins the same property
//! for the LRU engine.

use proptest::prelude::*;

use occache::core::{
    simulate, simulate_many, simulate_many_seeded, simulate_seeded, CacheConfig, ReplacementPolicy,
};
use occache::trace::{AccessKind, Address, MemRef};

/// An arbitrary engine-eligible slice of the given replacement policy:
/// one block size at up to four net sizes with varying sub-block size,
/// associativity and word size. The planner never mixes policies in a
/// slice, so neither does the generator.
fn arb_slice(policy: ReplacementPolicy) -> impl Strategy<Value = Vec<CacheConfig>> {
    (
        0u32..=4, // block 2..32
        proptest::collection::vec((0u32..=4, 0u32..=3, 0u32..=1, 0u32..=4), 4),
        1usize..=4, // how many of the four size candidates to keep
    )
        .prop_filter_map(
            "slice must contain at least one valid power-of-two geometry",
            move |(block_exp, sizes, take)| {
                let block = 2u64 << block_exp;
                let configs: Vec<CacheConfig> = sizes
                    .into_iter()
                    .take(take)
                    .filter_map(|(net_exp, ways_exp, word_exp, sub_exp)| {
                        CacheConfig::builder()
                            .net_size(32u64 << net_exp) // 32..512
                            .block_size(block)
                            .sub_block_size((2u64 << sub_exp).min(block)) // 2..block
                            .associativity(1u64 << ways_exp) // 1..8
                            .word_size(2u64 << word_exp) // 2 or 4
                            .replacement(policy)
                            .build()
                            .ok()
                            .filter(occache::core::engine_supports)
                    })
                    .collect();
                (!configs.is_empty()).then_some(configs)
            },
        )
}

/// An arbitrary 2-byte-aligned reference stream over a 32 KB space.
fn arb_trace(len: usize) -> impl Strategy<Value = Vec<MemRef>> {
    proptest::collection::vec((0u64..16_384, 0usize..3), len).prop_map(|raw| {
        raw.into_iter()
            .map(|(word, kind)| {
                let kind = [
                    AccessKind::InstrFetch,
                    AccessKind::DataRead,
                    AccessKind::DataWrite,
                ][kind];
                MemRef::new(Address::new(word * 2), kind)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full `Metrics` equality for the FIFO engine, arbitrary warm-up
    /// prefix included (0 keeps the cold-start case in the net).
    #[test]
    fn fifo_engine_equals_direct_simulation(
        configs in arb_slice(ReplacementPolicy::Fifo),
        trace in arb_trace(600),
        warmup in 0usize..600,
    ) {
        let all = simulate_many(&configs, trace.iter().copied(), warmup)
            .expect("arb_slice only builds engine-eligible slices");
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), warmup);
            prop_assert_eq!(*metrics, direct, "{} warmup {}", config, warmup);
        }
    }

    /// Full `Metrics` equality for the Random engine under the default
    /// seed: the per-class RNG replays exactly the draw sequence every
    /// member cache sees in its own direct simulation.
    #[test]
    fn random_engine_equals_direct_simulation(
        configs in arb_slice(ReplacementPolicy::Random),
        trace in arb_trace(600),
        warmup in 0usize..600,
    ) {
        let all = simulate_many(&configs, trace.iter().copied(), warmup)
            .expect("arb_slice only builds engine-eligible slices");
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), warmup);
            prop_assert_eq!(*metrics, direct, "{} warmup {}", config, warmup);
        }
    }

    /// The same equality under an arbitrary explicit seed, proving the
    /// seed threads identically through both paths (and that two
    /// different seeds go through the same machinery — the property
    /// quantifies over the seed, not one blessed constant).
    #[test]
    fn random_engine_equals_seeded_direct_simulation(
        configs in arb_slice(ReplacementPolicy::Random),
        trace in arb_trace(400),
        seed in 0u64..u64::MAX,
    ) {
        let all = simulate_many_seeded(&configs, trace.iter().copied(), 0, seed)
            .expect("arb_slice only builds engine-eligible slices");
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate_seeded(*config, trace.iter().copied(), 0, seed);
            prop_assert_eq!(*metrics, direct, "{} seed {}", config, seed);
        }
    }
}
