//! Cross-crate trace I/O: a generated workload survives a round trip
//! through the text trace format with metrics intact, so traces can be
//! exported, archived and re-simulated like the 1984 tapes were.

use occache::core::{simulate, CacheConfig};
use occache::trace::io::{parse_trace, write_trace};
use occache::trace::TraceSource;
use occache::workloads::WorkloadSpec;

#[test]
fn round_trip_preserves_simulation_results() {
    let trace = WorkloadSpec::z8000_grep().generator(0).collect_refs(30_000);

    let mut text = Vec::new();
    write_trace(&mut text, trace.iter().copied()).expect("in-memory write cannot fail");
    let reparsed = parse_trace(&text[..]).expect("own output must parse");
    assert_eq!(reparsed, trace);

    let config = CacheConfig::builder()
        .net_size(512)
        .block_size(16)
        .sub_block_size(4)
        .word_size(2)
        .build()
        .unwrap();
    let original = simulate(config, trace.iter().copied(), 0);
    let replayed = simulate(config, reparsed.iter().copied(), 0);
    assert_eq!(original, replayed);
}

#[test]
fn text_format_is_line_per_reference() {
    let trace = WorkloadSpec::pdp11_ed().generator(0).collect_refs(1_000);
    let mut text = Vec::new();
    write_trace(&mut text, trace.iter().copied()).unwrap();
    let text = String::from_utf8(text).expect("format is ASCII");
    assert_eq!(text.lines().count(), 1_000);
    for line in text.lines().take(10) {
        assert!(
            line.starts_with("i ") || line.starts_with("r ") || line.starts_with("w "),
            "{line}"
        );
    }
}
