//! Cross-validation of the two simulation engines: the direct sub-block
//! simulator configured as a fully-associative conventional LRU cache must
//! agree *exactly* with the Mattson stack-distance analyzer, for every
//! capacity, on the same trace. This is the strongest internal-consistency
//! check in the workspace — the two implementations share no code.

use occache::core::{simulate, CacheConfig, LruStackAnalyzer};
use occache::trace::TraceSource;
use occache::workloads::{Architecture, WorkloadSpec};

fn check(arch: Architecture, block: u64, capacities: &[u64], trace_len: usize) {
    let trace = WorkloadSpec::set_for(arch)[1]
        .generator(3)
        .collect_refs(trace_len);

    let mut analyzer = LruStackAnalyzer::new(block);
    for r in &trace {
        analyzer.access(r.address());
    }

    for &capacity_blocks in capacities {
        let config = CacheConfig::builder()
            .net_size(capacity_blocks * block)
            .block_size(block)
            .sub_block_size(block)
            .associativity(capacity_blocks) // one set: fully associative
            .word_size(arch.word_size())
            .build()
            .unwrap();
        assert_eq!(config.num_sets(), 1, "must be fully associative");
        let metrics = simulate(config, trace.iter().copied(), 0);
        // The analyzer counts every reference; the simulator's ratios
        // exclude writes, so compare raw miss *counts* via a write-free
        // re-check below — here all references are counted by running the
        // analyzer on the same stream and comparing totals.
        assert_eq!(
            analyzer.misses_at_capacity(capacity_blocks as usize),
            metrics.misses() + metrics.write_misses(),
            "{arch}, block {block}, capacity {capacity_blocks} blocks"
        );
    }
}

#[test]
fn analyzer_matches_simulator_pdp11_8_byte_blocks() {
    check(Architecture::Pdp11, 8, &[1, 2, 4, 8, 16, 32], 20_000);
}

#[test]
fn analyzer_matches_simulator_pdp11_32_byte_blocks() {
    check(Architecture::Pdp11, 32, &[2, 4, 8, 16], 20_000);
}

#[test]
fn analyzer_matches_simulator_vax_16_byte_blocks() {
    check(Architecture::Vax11, 16, &[1, 4, 16, 64], 20_000);
}

#[test]
fn analyzer_matches_simulator_s370() {
    check(Architecture::S370, 64, &[4, 16, 64], 20_000);
}

/// The stack-distance inclusion property: a larger LRU cache never misses
/// where a smaller one hits (on the same fully-associative stream).
#[test]
fn lru_inclusion_property() {
    let trace = WorkloadSpec::pdp11_simp().generator(9).collect_refs(30_000);
    let mut analyzer = LruStackAnalyzer::new(16);
    for r in &trace {
        analyzer.access(r.address());
    }
    let mut previous = u64::MAX;
    for capacity in 1..=128 {
        let misses = analyzer.misses_at_capacity(capacity);
        assert!(misses <= previous, "capacity {capacity}");
        previous = misses;
    }
}
