//! Shape checks against the paper's qualitative findings. These are the
//! findings a reproduction must preserve: orderings, trade-off directions
//! and rough factors — not absolute numbers, which depend on the (lost)
//! 1983 trace tapes.
//!
//! Trace lengths here are reduced for test speed; the experiment binaries
//! rerun everything at the paper's 1 million references.

use occache::core::{simulate, CacheConfig, FetchPolicy};
use occache::workloads::{m85_mix, Architecture, WorkloadSpec};

const LEN: usize = 120_000;

fn mean_miss(arch: Architecture, net: u64, block: u64, sub: u64, len: usize) -> f64 {
    let specs = WorkloadSpec::set_for(arch);
    let config = CacheConfig::builder()
        .net_size(net)
        .block_size(block)
        .sub_block_size(sub)
        .word_size(arch.word_size())
        .build()
        .unwrap();
    let total: f64 = specs
        .iter()
        .map(|spec| {
            let trace: Vec<_> = spec.generator(0).take(len).collect();
            simulate(config, trace.iter().copied(), 0).miss_ratio()
        })
        .sum();
    total / specs.len() as f64
}

/// §4.2.5: miss ratios increase from Z8000 to PDP-11 to VAX-11 to
/// System/370, at the headline 1024-byte (8,8) configuration.
#[test]
fn architecture_ordering_at_1024() {
    let z = mean_miss(Architecture::Z8000, 1024, 8, 8, LEN);
    let p = mean_miss(Architecture::Pdp11, 1024, 8, 8, LEN);
    let v = mean_miss(Architecture::Vax11, 1024, 8, 8, LEN);
    let s = mean_miss(Architecture::S370, 1024, 8, 8, LEN);
    assert!(z < p, "Z8000 {z} < PDP-11 {p}");
    assert!(p < v, "PDP-11 {p} < VAX-11 {v}");
    assert!(v < s, "VAX-11 {v} < S/370 {s}");
    // And by roughly the paper's factors: S/370 is several times PDP-11.
    assert!(s > 3.0 * p, "S/370 {s} vs PDP-11 {p}");
}

/// §3.1: miss ratio declines monotonically with cache size.
#[test]
fn miss_declines_with_cache_size() {
    for arch in Architecture::ALL {
        let mut previous = f64::INFINITY;
        for net in [64u64, 256, 1024] {
            let miss = mean_miss(arch, net, 8, 8, LEN / 2);
            assert!(
                miss < previous,
                "{arch}: miss at {net} = {miss} vs previous {previous}"
            );
            previous = miss;
        }
    }
}

/// §4.2: at fixed cache and block size, shrinking the sub-block raises the
/// miss ratio and lowers the traffic ratio — the central trade-off.
#[test]
fn sub_block_trade_off_direction() {
    let specs = WorkloadSpec::pdp11_set();
    let traces: Vec<Vec<_>> = specs
        .iter()
        .map(|s| s.generator(0).take(LEN).collect())
        .collect();
    let mut last: Option<(f64, f64)> = None;
    for sub in [32u64, 16, 8, 4, 2] {
        let config = CacheConfig::builder()
            .net_size(1024)
            .block_size(32)
            .sub_block_size(sub)
            .word_size(2)
            .build()
            .unwrap();
        let mut miss = 0.0;
        let mut traffic = 0.0;
        for t in &traces {
            let m = simulate(config, t.iter().copied(), 0);
            miss += m.miss_ratio();
            traffic += m.traffic_ratio();
        }
        miss /= traces.len() as f64;
        traffic /= traces.len() as f64;
        if let Some((prev_miss, prev_traffic)) = last {
            assert!(miss > prev_miss, "sub {sub}: miss must rise as sub shrinks");
            assert!(traffic < prev_traffic, "sub {sub}: traffic must fall");
        }
        last = Some((miss, traffic));
    }
}

/// §4.2.1: caches with one-word sub-blocks can never amplify bus traffic
/// (traffic ratio <= 1), while large sub-blocks on tiny caches can.
#[test]
fn word_sub_blocks_never_amplify_traffic() {
    let trace: Vec<_> = WorkloadSpec::pdp11_roff().generator(0).take(LEN).collect();
    let word_sub = CacheConfig::builder()
        .net_size(32)
        .block_size(4)
        .sub_block_size(2)
        .word_size(2)
        .build()
        .unwrap();
    let m = simulate(word_sub, trace.iter().copied(), 0);
    assert!(m.traffic_ratio() <= 1.0 + 1e-12, "{}", m.traffic_ratio());

    // A 64-byte cache with 16-byte blocks & sub-blocks amplifies traffic
    // (the paper's 16,8 64-byte row has traffic 1.596).
    let big_sub = CacheConfig::builder()
        .net_size(64)
        .block_size(16)
        .sub_block_size(16)
        .word_size(2)
        .build()
        .unwrap();
    let m = simulate(big_sub, trace.iter().copied(), 0);
    assert!(m.traffic_ratio() > 1.0, "{}", m.traffic_ratio());
}

/// §4.4: load-forward, vs the same sub-block size without it, cuts misses
/// by a large factor at a modest traffic increase; vs full-block fetch it
/// cuts traffic at a small miss cost.
#[test]
fn load_forward_sits_between_extremes() {
    let traces: Vec<Vec<_>> = WorkloadSpec::z8000_load_forward_set()
        .iter()
        .map(|s| s.generator(0).take(LEN).collect())
        .collect();
    let run = |sub: u64, fetch: FetchPolicy| {
        let config = CacheConfig::builder()
            .net_size(256)
            .block_size(16)
            .sub_block_size(sub)
            .word_size(2)
            .fetch(fetch)
            .build()
            .unwrap();
        let mut miss = 0.0;
        let mut traffic = 0.0;
        for t in &traces {
            let m = simulate(config, t.iter().copied(), 0);
            miss += m.miss_ratio();
            traffic += m.traffic_ratio();
        }
        (miss / traces.len() as f64, traffic / traces.len() as f64)
    };
    let (full_miss, full_traffic) = run(16, FetchPolicy::Demand);
    let (lf_miss, lf_traffic) = run(2, FetchPolicy::LOAD_FORWARD);
    let (plain_miss, plain_traffic) = run(2, FetchPolicy::Demand);

    assert!(
        lf_miss < plain_miss / 1.5,
        "LF cuts misses: {lf_miss} vs {plain_miss}"
    );
    assert!(lf_traffic > plain_traffic, "LF costs traffic over plain");
    assert!(
        lf_miss > full_miss,
        "LF misses slightly more than full-block"
    );
    assert!(lf_traffic < full_traffic, "LF moves less than full-block");
}

/// §4.1 / Table 6: the 360/85 sector organisation performs far worse than
/// 4-way set-associative mapping at equal size, and most sector sub-blocks
/// are never referenced while resident.
#[test]
fn sector_cache_loses_to_set_associative() {
    let traces: Vec<Vec<_>> = m85_mix()
        .iter()
        .map(|s| s.generator(0).take(LEN).collect())
        .collect();
    let sector = CacheConfig::builder()
        .net_size(16 * 1024)
        .block_size(1024)
        .sub_block_size(64)
        .associativity(16)
        .word_size(4)
        .build()
        .unwrap();
    let set_assoc = CacheConfig::builder()
        .net_size(16 * 1024)
        .block_size(64)
        .sub_block_size(64)
        .associativity(4)
        .word_size(4)
        .build()
        .unwrap();
    let mut sector_miss = 0.0;
    let mut set_miss = 0.0;
    let mut unreferenced = 0.0;
    for t in &traces {
        let m = simulate(sector, t.iter().copied(), 0);
        sector_miss += m.miss_ratio();
        unreferenced += m.unreferenced_sub_block_fraction();
        set_miss += simulate(set_assoc, t.iter().copied(), 0).miss_ratio();
    }
    let n = traces.len() as f64;
    assert!(
        sector_miss / set_miss > 1.8,
        "sector {sector_miss} vs set-assoc {set_miss}: expected ~3x"
    );
    assert!(
        unreferenced / n > 0.6,
        "most sector sub-blocks must go unreferenced, got {}",
        unreferenced / n
    );
}

/// §2.3: RISC II instruction-cache miss ratio falls ~20% per size doubling
/// over 512..4096 bytes.
#[test]
fn riscii_curve_shape() {
    use occache::workloads::riscii_instruction_workload;
    let trace: Vec<_> = riscii_instruction_workload()
        .generator(0)
        .take(LEN)
        .collect();
    let mut previous = f64::INFINITY;
    for net in [512u64, 1024, 2048, 4096] {
        let config = CacheConfig::builder()
            .net_size(net)
            .block_size(8)
            .sub_block_size(8)
            .associativity(1)
            .word_size(4)
            .build()
            .unwrap();
        let miss = simulate(config, trace.iter().copied(), 0).miss_ratio();
        assert!(miss < previous, "net {net}");
        if previous.is_finite() {
            let reduction = 1.0 - miss / previous;
            assert!(
                (0.02..0.60).contains(&reduction),
                "net {net}: reduction per doubling {reduction}"
            );
        }
        previous = miss;
    }
}
