//! Property-based equivalence: the one-pass all-sizes LRU engine must
//! produce metrics **exactly equal** (every counter, hence every derived
//! ratio) to running the direct simulator once per configuration —
//! across random geometries (including sub-block < block), random
//! reference streams and random warm-up prefixes.

use proptest::prelude::*;

use occache::core::{simulate, simulate_many, CacheConfig};
use occache::trace::{AccessKind, Address, MemRef};

/// An arbitrary engine-eligible slice: one block size at up to four net
/// sizes with varying sub-block size, associativity and word size (the
/// slice contract: only the block size is shared). LRU, demand fetch and
/// write-through are the engine's domain; the direct simulator is the
/// reference for all of them.
fn arb_slice() -> impl Strategy<Value = Vec<CacheConfig>> {
    (
        0u32..=4, // block 2..32
        proptest::collection::vec((0u32..=4, 0u32..=3, 0u32..=1, 0u32..=4), 4),
        1usize..=4, // how many of the four size candidates to keep
    )
        .prop_filter_map(
            "slice must contain at least one valid power-of-two geometry",
            |(block_exp, sizes, take)| {
                let block = 2u64 << block_exp;
                let configs: Vec<CacheConfig> = sizes
                    .into_iter()
                    .take(take)
                    .filter_map(|(net_exp, ways_exp, word_exp, sub_exp)| {
                        CacheConfig::builder()
                            .net_size(32u64 << net_exp) // 32..512
                            .block_size(block)
                            .sub_block_size((2u64 << sub_exp).min(block)) // 2..block
                            .associativity(1u64 << ways_exp) // 1..8
                            .word_size(2u64 << word_exp) // 2 or 4
                            .build()
                            .ok()
                            .filter(occache::core::engine_supports)
                    })
                    .collect();
                (!configs.is_empty()).then_some(configs)
            },
        )
}

/// An arbitrary 2-byte-aligned reference stream over a 32 KB space.
fn arb_trace(len: usize) -> impl Strategy<Value = Vec<MemRef>> {
    proptest::collection::vec((0u64..16_384, 0usize..3), len).prop_map(|raw| {
        raw.into_iter()
            .map(|(word, kind)| {
                let kind = [
                    AccessKind::InstrFetch,
                    AccessKind::DataRead,
                    AccessKind::DataWrite,
                ][kind];
                MemRef::new(Address::new(word * 2), kind)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full `Metrics` equality (the type derives `Eq`, so this covers
    /// every counter: accesses, misses, fetch bytes, write-throughs,
    /// evictions and unreferenced-sub-block statistics) for every size
    /// in the slice, cold-start.
    #[test]
    fn engine_equals_direct_simulation(
        configs in arb_slice(),
        trace in arb_trace(600),
    ) {
        let all = simulate_many(&configs, trace.iter().copied(), 0)
            .expect("arb_slice only builds engine-eligible slices");
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), 0);
            prop_assert_eq!(*metrics, direct, "{}", config);
        }
    }

    /// The same equality under the warm-start discipline: an arbitrary
    /// warm-up prefix is simulated but excluded from the counters.
    #[test]
    fn engine_equals_direct_simulation_with_warmup(
        configs in arb_slice(),
        trace in arb_trace(600),
        warmup in 0usize..600,
    ) {
        let all = simulate_many(&configs, trace.iter().copied(), warmup)
            .expect("arb_slice only builds engine-eligible slices");
        for (config, metrics) in configs.iter().zip(&all) {
            let direct = simulate(*config, trace.iter().copied(), warmup);
            prop_assert_eq!(*metrics, direct, "{} warmup {}", config, warmup);
        }
    }
}
