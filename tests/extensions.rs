//! Integration tests for the extension substrates: prefetching, the
//! RISC II chip, multiprogramming and shared-bus sizing — each exercised
//! against the synthetic workloads rather than hand-built streams.

use occache::core::{simulate, CacheConfig, FetchPolicy, SharedBus};
use occache::riscii::RiscIiCache;
use occache::trace::TraceSource;
use occache::workloads::{riscii_instruction_workload, Multiprogram, WorkloadSpec};

const LEN: usize = 80_000;

fn prefetch_config(fetch: FetchPolicy) -> CacheConfig {
    CacheConfig::builder()
        .net_size(1024)
        .block_size(16)
        .sub_block_size(4)
        .word_size(2)
        .fetch(fetch)
        .build()
        .unwrap()
}

/// §2.2's cost/benefit structure: each prefetch policy trades misses for
/// traffic, ordered demand > prefetch-on-miss > tagged on misses and the
/// reverse on traffic; load-forward moves the most data of all.
#[test]
fn prefetch_policies_order_as_expected() {
    let trace = WorkloadSpec::pdp11_ed().generator(0).collect_refs(LEN);
    let demand = simulate(
        prefetch_config(FetchPolicy::Demand),
        trace.iter().copied(),
        0,
    );
    let on_miss = simulate(
        prefetch_config(FetchPolicy::PrefetchNext { tagged: false }),
        trace.iter().copied(),
        0,
    );
    let tagged = simulate(
        prefetch_config(FetchPolicy::PrefetchNext { tagged: true }),
        trace.iter().copied(),
        0,
    );
    let forward = simulate(
        prefetch_config(FetchPolicy::LOAD_FORWARD),
        trace.iter().copied(),
        0,
    );
    assert!(on_miss.miss_ratio() < demand.miss_ratio());
    assert!(tagged.miss_ratio() < on_miss.miss_ratio());
    assert!(on_miss.traffic_ratio() > demand.traffic_ratio());
    assert!(forward.traffic_ratio() > tagged.traffic_ratio());
    // Pollution is real but bounded on a loop-heavy workload.
    assert!(on_miss.prefetch_pollution() > 0.0);
    assert!(on_miss.prefetch_pollution() < 0.8);
    // Tagged prefetch re-triggers on use, so its pollution is no worse.
    assert!(tagged.prefetch_pollution() <= on_miss.prefetch_pollution());
}

/// Prefetch bookkeeping never counts more uses than issues.
#[test]
fn prefetch_uses_bounded_by_issues() {
    for tagged in [false, true] {
        let trace = WorkloadSpec::z8000_grep().generator(1).collect_refs(LEN);
        let m = simulate(
            prefetch_config(FetchPolicy::PrefetchNext { tagged }),
            trace.iter().copied(),
            0,
        );
        assert!(m.prefetch_uses() <= m.prefetched_subs(), "tagged={tagged}");
        assert!((0.0..=1.0).contains(&m.prefetch_pollution()));
    }
}

/// The RISC II chip is deterministic and its headline quantities live in
/// the bands the paper reports.
#[test]
fn riscii_chip_reproduces_headline_bands() {
    let trace = riscii_instruction_workload()
        .generator(0)
        .collect_refs(200_000);
    let mut a = RiscIiCache::paper_chip().unwrap();
    let mut b = RiscIiCache::paper_chip().unwrap();
    for r in &trace {
        a.fetch(r.address());
        b.fetch(r.address());
    }
    assert_eq!(a.miss_ratio(), b.miss_ratio(), "deterministic");
    assert!((0.10..0.20).contains(&a.miss_ratio()), "{}", a.miss_ratio());
    assert!(
        (0.75..0.95).contains(&a.prediction_accuracy()),
        "{}",
        a.prediction_accuracy()
    );
    assert!(
        (0.30..0.50).contains(&a.hit_time_reduction()),
        "{}",
        a.hit_time_reduction()
    );
}

/// Multiprogramming inflates the miss ratio, and more at larger caches —
/// the §3.3 claim the task_switch experiment quantifies.
#[test]
fn task_switching_inflates_large_caches_more() {
    let specs = [WorkloadSpec::pdp11_ed(), WorkloadSpec::pdp11_plot()];
    let solo: Vec<_> = specs[0].generator(0).collect_refs(LEN);
    let mut mp = Multiprogram::from_specs(&specs, 2_000);
    let interleaved = mp.collect_refs(LEN);

    let mut inflations = Vec::new();
    for net in [64u64, 1024, 8192] {
        let config = CacheConfig::builder()
            .net_size(net)
            .block_size(16)
            .sub_block_size(8)
            .word_size(2)
            .build()
            .unwrap();
        let solo_miss = simulate(config, solo.iter().copied(), 0).miss_ratio();
        let mp_miss = simulate(config, interleaved.iter().copied(), 0).miss_ratio();
        inflations.push(mp_miss / solo_miss);
    }
    assert!(
        inflations[2] > inflations[0],
        "switching hurts the big cache more: {inflations:?}"
    );
    assert!(
        inflations[0] < 1.4,
        "tiny caches barely notice: {inflations:?}"
    );
}

/// Traffic ratios and the shared-bus model compose: a better cache
/// supports at least as many processors.
#[test]
fn better_caches_support_more_processors() {
    let trace = WorkloadSpec::pdp11_simp().generator(0).collect_refs(LEN);
    let bus = SharedBus::new(0.4);
    let mut last = 0;
    for (net, block, sub) in [(64u64, 4u64, 2u64), (256, 16, 8), (1024, 16, 16)] {
        let config = CacheConfig::builder()
            .net_size(net)
            .block_size(block)
            .sub_block_size(sub)
            .word_size(2)
            .build()
            .unwrap();
        let traffic = simulate(config, trace.iter().copied(), 0).traffic_ratio();
        let processors = bus.max_processors(traffic, 0.7);
        assert!(processors >= last, "{net} bytes: {processors} < {last}");
        last = processors;
    }
    assert!(last >= 4, "a 1 KB cache carries several processors: {last}");
}
