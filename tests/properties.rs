//! Property-based tests (proptest) over the core data structures and
//! invariants: arbitrary geometries, arbitrary reference streams.

use proptest::prelude::*;

use occache::core::{
    simulate, AccessOutcome, CacheConfig, FetchPolicy, LruStackAnalyzer, ReplacementPolicy,
    SubBlockCache,
};
use occache::trace::{AccessKind, Address, MemRef};

/// An arbitrary valid cache geometry drawn from the Table 1-ish space.
fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (0u32..=5, 0u32..=5, 0u32..=4, 0u32..=3, 0usize..3, 0usize..3).prop_filter_map(
        "geometry must satisfy word <= sub <= block <= net",
        |(net_exp, block_exp, sub_exp, ways_exp, policy_idx, fetch_idx)| {
            let net = 32u64 << net_exp; // 32..1024
            let block = 2u64 << block_exp; // 2..64
            let sub = 2u64 << sub_exp; // 2..32
            let ways = 1u64 << ways_exp; // 1..8
            let policy = [
                ReplacementPolicy::Lru,
                ReplacementPolicy::Fifo,
                ReplacementPolicy::Random,
            ][policy_idx];
            let fetch = [
                FetchPolicy::Demand,
                FetchPolicy::LOAD_FORWARD,
                FetchPolicy::LoadForward {
                    remember_valid: true,
                },
            ][fetch_idx];
            CacheConfig::builder()
                .net_size(net)
                .block_size(block)
                .sub_block_size(sub)
                .associativity(ways)
                .replacement(policy)
                .fetch(fetch)
                .word_size(2)
                .build()
                .ok()
        },
    )
}

/// An arbitrary word-aligned reference stream over a 64 KB space.
fn arb_trace(len: usize) -> impl Strategy<Value = Vec<MemRef>> {
    proptest::collection::vec((0u64..32_768, 0usize..3), len).prop_map(|raw| {
        raw.into_iter()
            .map(|(word, kind)| {
                let kind = [
                    AccessKind::InstrFetch,
                    AccessKind::DataRead,
                    AccessKind::DataWrite,
                ][kind];
                MemRef::new(Address::new(word * 2), kind)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ratios stay in sane ranges for any geometry and stream; misses
    /// never exceed accesses.
    #[test]
    fn metrics_are_sane(config in arb_config(), trace in arb_trace(500)) {
        let m = simulate(config, trace.iter().copied(), 0);
        prop_assert!(m.misses() <= m.accesses());
        prop_assert!((0.0..=1.0).contains(&m.miss_ratio()));
        prop_assert!(m.traffic_ratio() >= 0.0);
        // A fill never moves more than one whole block per miss.
        prop_assert!(m.fetch_bytes() <= m.misses() * config.block_size());
    }

    /// Immediately re-reading any just-accessed address is a hit.
    #[test]
    fn read_after_access_hits(config in arb_config(), trace in arb_trace(300)) {
        let mut cache = SubBlockCache::new(config);
        for r in trace {
            cache.access(r.address(), r.kind());
            prop_assert!(cache.contains(r.address()), "{r} not resident after access");
            let outcome = cache.access(r.address(), AccessKind::DataRead);
            prop_assert_eq!(outcome, AccessOutcome::Hit);
        }
    }

    /// Demand-fetch traffic identity holds for arbitrary streams (counted
    /// accesses only).
    #[test]
    fn demand_traffic_identity(trace in arb_trace(500)) {
        let config = CacheConfig::builder()
            .net_size(256)
            .block_size(16)
            .sub_block_size(4)
            .word_size(2)
            .build()
            .unwrap();
        let m = simulate(config, trace.iter().copied(), 0);
        prop_assert_eq!(m.fetch_bytes(), m.misses() * 4);
    }

    /// Determinism: simulating the same trace twice gives identical
    /// metrics, for every policy including Random replacement.
    #[test]
    fn simulation_is_deterministic(config in arb_config(), trace in arb_trace(400)) {
        let a = simulate(config, trace.iter().copied(), 0);
        let b = simulate(config, trace.iter().copied(), 0);
        prop_assert_eq!(a, b);
    }

    /// The stack-distance analyzer's curve is monotone non-increasing and
    /// bottoms out at the cold-miss count.
    #[test]
    fn stack_distance_curve_monotone(trace in arb_trace(400)) {
        let mut an = LruStackAnalyzer::new(8);
        for r in &trace {
            an.access(r.address());
        }
        let mut previous = u64::MAX;
        for capacity in 1..64 {
            let misses = an.misses_at_capacity(capacity);
            prop_assert!(misses <= previous);
            prop_assert!(misses >= an.cold_misses());
            previous = misses;
        }
        prop_assert_eq!(an.misses_at_capacity(100_000), an.cold_misses());
    }

    /// Fully-associative LRU simulation equals the analyzer on arbitrary
    /// streams (not just generator output).
    #[test]
    fn analyzer_equals_simulator_on_random_streams(trace in arb_trace(400)) {
        let mut an = LruStackAnalyzer::new(8);
        for r in &trace {
            an.access(r.address());
        }
        for capacity in [1u64, 2, 4, 8, 16] {
            let config = CacheConfig::builder()
                .net_size(capacity * 8)
                .block_size(8)
                .sub_block_size(8)
                .associativity(capacity)
                .word_size(2)
                .build()
                .unwrap();
            let m = simulate(config, trace.iter().copied(), 0);
            prop_assert_eq!(
                an.misses_at_capacity(capacity as usize),
                m.misses() + m.write_misses()
            );
        }
    }

    /// Load-forward's redundant scheme never fetches less than the
    /// optimized scheme, and their miss counts are identical.
    #[test]
    fn load_forward_redundancy_only_adds_traffic(trace in arb_trace(400)) {
        let base = |remember_valid| {
            CacheConfig::builder()
                .net_size(128)
                .block_size(16)
                .sub_block_size(2)
                .word_size(2)
                .fetch(FetchPolicy::LoadForward { remember_valid })
                .build()
                .unwrap()
        };
        let redundant = simulate(base(false), trace.iter().copied(), 0);
        let optimized = simulate(base(true), trace.iter().copied(), 0);
        prop_assert_eq!(redundant.misses(), optimized.misses());
        prop_assert!(redundant.fetch_bytes() >= optimized.fetch_bytes());
    }

    /// Gross size arithmetic: gross > net, and within the bound
    /// net + blocks × (tag bytes + valid bytes) + rounding.
    #[test]
    fn gross_size_bounds(config in arb_config()) {
        let gross = config.gross_size();
        prop_assert!(gross > config.net_size());
        let per_block_bits = config.tag_bits() as u64 + config.sub_blocks_per_block();
        let upper = config.net_size() + config.num_blocks() * per_block_bits.div_ceil(8) + 1;
        prop_assert!(gross <= upper, "gross {gross} > bound {upper}");
    }

    /// Flushing restores a truly empty cache: every first re-access
    /// misses again.
    #[test]
    fn flush_empties_everything(trace in arb_trace(200)) {
        let config = CacheConfig::builder()
            .net_size(128)
            .block_size(8)
            .sub_block_size(4)
            .word_size(2)
            .build()
            .unwrap();
        let mut cache = SubBlockCache::new(config);
        for r in &trace {
            cache.access(r.address(), r.kind());
        }
        cache.flush();
        if let Some(r) = trace.first() {
            prop_assert!(!cache.contains(r.address()));
        }
        prop_assert_eq!(cache.metrics().accesses(), 0);
    }
}
