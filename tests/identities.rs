//! Cross-crate metric identities: relations that must hold *exactly*, for
//! any trace, by construction of the metrics.

use occache::core::{simulate, BusModel, CacheConfig, FetchPolicy};
use occache::trace::TraceSource;
use occache::workloads::{Architecture, WorkloadSpec};

fn trace_for(arch: Architecture, n: usize) -> Vec<occache::trace::MemRef> {
    WorkloadSpec::set_for(arch)[0].generator(7).collect_refs(n)
}

/// For demand fetch, every counted miss moves exactly one sub-block, so
/// traffic ratio == miss ratio × (sub-block / word). The paper's Table 7
/// demand rows satisfy this; our simulator must satisfy it exactly.
#[test]
fn traffic_is_miss_times_sub_over_word_for_demand() {
    for arch in Architecture::ALL {
        let trace = trace_for(arch, 50_000);
        let word = arch.word_size();
        for (net, block, sub) in [(64, 8, word), (256, 16, 8), (1024, 32, 4.max(word))] {
            let config = CacheConfig::builder()
                .net_size(net)
                .block_size(block)
                .sub_block_size(sub)
                .word_size(word)
                .build()
                .unwrap();
            let m = simulate(config, trace.iter().copied(), 0);
            let expected = m.miss_ratio() * sub as f64 / word as f64;
            assert!(
                (m.traffic_ratio() - expected).abs() < 1e-12,
                "{arch} {net}/{block},{sub}"
            );
        }
    }
}

/// The linear bus model's scaled traffic ratio IS the traffic ratio.
#[test]
fn linear_bus_reproduces_traffic_ratio() {
    let trace = trace_for(Architecture::Pdp11, 30_000);
    let config = CacheConfig::builder()
        .net_size(512)
        .block_size(16)
        .sub_block_size(4)
        .word_size(2)
        .build()
        .unwrap();
    let m = simulate(config, trace.iter().copied(), 0);
    assert!((m.scaled_traffic_ratio(BusModel::Linear) - m.traffic_ratio()).abs() < 1e-12);
}

/// For demand fetch (fixed transfer size), the nibble-scaled ratio equals
/// the plain ratio times the scale factor for that transfer size — the
/// transformation the paper applies to produce its nibble columns.
#[test]
fn nibble_scaling_matches_fixed_transfer_factor() {
    let trace = trace_for(Architecture::Pdp11, 30_000);
    let bus = BusModel::paper_nibble();
    for sub in [2u64, 4, 8, 16] {
        let config = CacheConfig::builder()
            .net_size(1024)
            .block_size(16)
            .sub_block_size(sub)
            .word_size(2)
            .build()
            .unwrap();
        let m = simulate(config, trace.iter().copied(), 0);
        let words = sub / 2;
        let expected = m.traffic_ratio() * bus.scale_factor(words);
        assert!(
            (m.scaled_traffic_ratio(bus) - expected).abs() < 1e-12,
            "sub {sub}"
        );
    }
}

/// A sub-block size equal to the block size is a conventional cache: the
/// miss ratio must be identical to a cache that has no sub-block valid
/// machinery at all (we model that as the same config — the identity
/// checked here is that a (b, b) cache never takes a sub-block miss).
#[test]
fn sub_equals_block_never_sub_misses() {
    use occache::core::{AccessOutcome, SubBlockCache};
    let trace = trace_for(Architecture::Vax11, 50_000);
    let config = CacheConfig::builder()
        .net_size(512)
        .block_size(16)
        .sub_block_size(16)
        .word_size(4)
        .build()
        .unwrap();
    let mut cache = SubBlockCache::new(config);
    for r in &trace {
        let outcome = cache.access(r.address(), r.kind());
        assert_ne!(outcome, AccessOutcome::SubBlockMiss);
    }
}

/// Load-forward with `remember_valid` differs from the redundant scheme
/// only in traffic, never in misses or cache contents.
#[test]
fn load_forward_variants_agree_on_misses() {
    let trace = trace_for(Architecture::Z8000, 50_000);
    let mut metrics = Vec::new();
    for remember_valid in [false, true] {
        let config = CacheConfig::builder()
            .net_size(256)
            .block_size(16)
            .sub_block_size(2)
            .word_size(2)
            .fetch(FetchPolicy::LoadForward { remember_valid })
            .build()
            .unwrap();
        metrics.push(simulate(config, trace.iter().copied(), 0));
    }
    assert_eq!(metrics[0].misses(), metrics[1].misses());
    assert!(metrics[0].fetch_bytes() >= metrics[1].fetch_bytes());
    assert_eq!(metrics[1].redundant_sub_loads(), 0);
    assert_eq!(
        metrics[0].fetch_bytes() - metrics[1].fetch_bytes(),
        metrics[0].redundant_sub_loads() * 2,
        "traffic difference is exactly the redundant loads"
    );
}

/// Warm-start metrics over the tail of a trace equal running the prefix,
/// resetting metrics, and running the tail — the §4.2.2 discipline.
#[test]
fn warmup_is_reset_after_prefix() {
    use occache::core::SubBlockCache;
    let trace = trace_for(Architecture::Z8000, 40_000);
    let config = CacheConfig::builder()
        .net_size(1024)
        .block_size(16)
        .sub_block_size(8)
        .word_size(2)
        .build()
        .unwrap();

    let helper = simulate(config, trace.iter().copied(), 10_000);

    let mut manual = SubBlockCache::new(config);
    for r in &trace[..10_000] {
        manual.access(r.address(), r.kind());
    }
    manual.reset_metrics();
    for r in &trace[10_000..] {
        manual.access(r.address(), r.kind());
    }
    assert_eq!(helper.misses(), manual.metrics().misses());
    assert_eq!(helper.accesses(), manual.metrics().accesses());
    assert_eq!(helper.fetch_bytes(), manual.metrics().fetch_bytes());
}
