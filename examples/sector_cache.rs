//! The original sector cache (§4.1): why the IBM 360/85's organisation
//! lost to set-associative mapping.
//!
//! The 360/85 tied each address tag to a 1024-byte *sector* and
//! transferred 64-byte sub-blocks, because associative search hardware was
//! expensive in 1968 and 16 tags were all one could afford. Fifteen years
//! later the paper shows the same chip area is far better spent on
//! set-associative mapping of 64-byte blocks: data can live in only 16
//! places, and most of each giant sector is never used.
//!
//! Run with: `cargo run --release --example sector_cache`

use occache::core::{simulate, CacheConfig};
use occache::workloads::m85_mix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let traces: Vec<Vec<_>> = m85_mix()
        .iter()
        .map(|spec| spec.generator(0).take(400_000).collect())
        .collect();

    let sector = CacheConfig::builder()
        .net_size(16 * 1024)
        .block_size(1024)
        .sub_block_size(64)
        .associativity(16) // 16 sectors, fully associative
        .word_size(4)
        .build()?;
    let set_assoc = CacheConfig::builder()
        .net_size(16 * 1024)
        .block_size(64)
        .sub_block_size(64)
        .associativity(4)
        .word_size(4)
        .build()?;

    println!("16 KB caches on a System/360-class six-program mix\n");
    let mut sector_miss = 0.0;
    let mut unreferenced = 0.0;
    let mut set_miss = 0.0;
    for trace in &traces {
        let m = simulate(sector, trace.iter().copied(), 0);
        sector_miss += m.miss_ratio();
        unreferenced += m.unreferenced_sub_block_fraction();
        set_miss += simulate(set_assoc, trace.iter().copied(), 0).miss_ratio();
    }
    let n = traces.len() as f64;
    sector_miss /= n;
    unreferenced /= n;
    set_miss /= n;

    println!("360/85 sector cache (16 x 1024 B sectors): miss {sector_miss:.4}");
    println!("4-way set-associative (64 B blocks):       miss {set_miss:.4}");
    println!(
        "set-associative advantage: {:.1}x fewer misses (paper: ~3x)",
        sector_miss / set_miss
    );
    println!(
        "sector sub-blocks never referenced while resident: {:.0}% (paper: 72%)",
        unreferenced * 100.0
    );
    println!(
        "\nNote the tag budgets: the sector cache needs {} tag+valid bytes,\n\
         the set-associative one {} — the sector design saved tag RAM at a\n\
         3x cost in misses, a bargain in 1968 and a bad trade by 1984.",
        sector.gross_size() - sector.net_size(),
        set_assoc.gross_size() - set_assoc.net_size(),
    );
    Ok(())
}
