//! Load-forward (§4.4): the Zilog Z80,000 on-chip cache design.
//!
//! The Z80,000 used a 256-byte cache with 16-byte blocks, one-word
//! (2-byte) sub-blocks, and *load-forward*: on a miss, fetch the target
//! sub-block and everything after it in the block. This combines the low
//! miss ratio of big blocks with most of the traffic savings of small
//! sub-blocks, because code and data reference patterns are
//! forward-biased.
//!
//! This example compares the three candidate designs on the compiler
//! traces the paper used (CPP, C1, C2) and reports the redundant-load
//! overhead of the simple scheme.
//!
//! Run with: `cargo run --release --example load_forward`

use occache::core::{simulate, CacheConfig, FetchPolicy};
use occache::workloads::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let traces: Vec<Vec<_>> = WorkloadSpec::z8000_load_forward_set()
        .iter()
        .map(|spec| spec.generator(0).take(400_000).collect())
        .collect();

    let designs: [(&str, u64, FetchPolicy); 4] = [
        ("full-block fetch   (16,16)", 16, FetchPolicy::Demand),
        ("word sub-blocks    (16,2)", 2, FetchPolicy::Demand),
        (
            "Z80,000 load-forward (16,2,LF)",
            2,
            FetchPolicy::LOAD_FORWARD,
        ),
        (
            "optimized load-forward",
            2,
            FetchPolicy::LoadForward {
                remember_valid: true,
            },
        ),
    ];

    println!("256-byte cache, 16-byte blocks, Z8000 compiler traces\n");
    println!(
        "{:<32} {:>8} {:>9} {:>10}",
        "design", "miss", "traffic", "redundant"
    );
    for (name, sub, fetch) in designs {
        let config = CacheConfig::builder()
            .net_size(256)
            .block_size(16)
            .sub_block_size(sub)
            .word_size(2)
            .fetch(fetch)
            .build()?;
        let mut miss = 0.0;
        let mut traffic = 0.0;
        let mut redundant = 0.0;
        for trace in &traces {
            let m = simulate(config, trace.iter().copied(), 20_000);
            miss += m.miss_ratio();
            traffic += m.traffic_ratio();
            if m.sub_loads() > 0 {
                redundant += m.redundant_sub_loads() as f64 / m.sub_loads() as f64;
            }
        }
        let n = traces.len() as f64;
        println!(
            "{name:<32} {:>8.4} {:>9.4} {:>9.1}%",
            miss / n,
            traffic / n,
            redundant / n * 100.0
        );
    }
    println!(
        "\nLoad-forward sits between the extremes: nearly the miss ratio of\n\
         full-block fetch at a fraction of its traffic. The redundant-load\n\
         overhead of the simple scheme is small — which is why the Z80,000\n\
         (and the paper) did not bother with the optimized variant."
    );
    Ok(())
}
