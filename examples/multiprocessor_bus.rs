//! Bus-limited shared-memory systems (§4.3): when several microprocessors
//! share one memory bus, the figure of merit is not raw bytes moved but
//! *bus occupancy* under the bus's cost model `a + b·w`.
//!
//! With nibble-mode DRAMs (first word 160 ns, subsequent 55 ns) a burst of
//! w sequential words costs roughly `1 + (w-1)/3` single-word times, so
//! larger sub-blocks amortise the transaction overhead — the paper found
//! the optimal sub-block size roughly *doubles* relative to a conventional
//! bus. This example measures that shift.
//!
//! Run with: `cargo run --release --example multiprocessor_bus`

use occache::core::{simulate, BusModel, CacheConfig};
use occache::workloads::{Architecture, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = Architecture::Pdp11;
    let traces: Vec<Vec<_>> = WorkloadSpec::set_for(arch)
        .iter()
        .map(|spec| spec.generator(0).take(400_000).collect())
        .collect();

    let conventional = BusModel::Linear;
    let nibble = BusModel::from_timings(160.0, 55.0);

    println!("512-byte cache, 16-byte blocks, PDP-11 workload");
    println!(
        "{:>5} {:>9} {:>14} {:>14}",
        "sub", "miss", "linear bus", "nibble bus"
    );
    let mut best_linear = (0u64, f64::INFINITY);
    let mut best_nibble = (0u64, f64::INFINITY);
    for sub in [2u64, 4, 8, 16] {
        let config = CacheConfig::builder()
            .net_size(512)
            .block_size(16)
            .sub_block_size(sub)
            .word_size(arch.word_size())
            .build()?;
        let mut miss = 0.0;
        let mut linear = 0.0;
        let mut scaled = 0.0;
        for trace in &traces {
            let m = simulate(config, trace.iter().copied(), 0);
            miss += m.miss_ratio();
            linear += m.scaled_traffic_ratio(conventional);
            scaled += m.scaled_traffic_ratio(nibble);
        }
        let n = traces.len() as f64;
        miss /= n;
        linear /= n;
        scaled /= n;
        println!("{sub:>5} {miss:>9.4} {linear:>14.4} {scaled:>14.4}");
        if linear < best_linear.1 {
            best_linear = (sub, linear);
        }
        if scaled < best_nibble.1 {
            best_nibble = (sub, scaled);
        }
    }

    println!(
        "\nbus-occupancy-optimal sub-block: {} bytes on a conventional bus,\n\
         {} bytes with nibble-mode memories",
        best_linear.0, best_nibble.0
    );
    println!(
        "(§4.3/§5: \"the optimum sub-block size roughly doubled relative to\n\
         the optimum size found in other results\")"
    );
    Ok(())
}
