//! The sub-block design space (§4.2): fix a 1024-byte cache with 32-byte
//! blocks and vary the sub-block size to trade miss ratio against bus
//! traffic — the paper's central knob for on-chip caches.
//!
//! A system with spare bus bandwidth sets the sub-block size equal to the
//! block size (fewest misses); a bus-limited multiprocessor shrinks the
//! sub-block to one word (least traffic). This example prints the whole
//! trade-off curve and both recommended operating points.
//!
//! Run with: `cargo run --release --example design_space`

use occache::core::{simulate, CacheConfig};
use occache::workloads::{Architecture, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = Architecture::Pdp11;
    let traces: Vec<Vec<_>> = WorkloadSpec::set_for(arch)
        .iter()
        .map(|spec| spec.generator(0).take(400_000).collect())
        .collect();

    println!(
        "1024-byte cache, 32-byte blocks, PDP-11 workload ({} traces)",
        traces.len()
    );
    println!(
        "{:>5} {:>10} {:>10} {:>10}",
        "sub", "miss", "traffic", "gross"
    );

    let mut curve = Vec::new();
    let mut sub = arch.word_size();
    while sub <= 32 {
        let config = CacheConfig::builder()
            .net_size(1024)
            .block_size(32)
            .sub_block_size(sub)
            .word_size(arch.word_size())
            .build()?;
        let mut miss = 0.0;
        let mut traffic = 0.0;
        for trace in &traces {
            let m = simulate(config, trace.iter().copied(), 0);
            miss += m.miss_ratio();
            traffic += m.traffic_ratio();
        }
        miss /= traces.len() as f64;
        traffic /= traces.len() as f64;
        println!(
            "{sub:>5} {miss:>10.4} {traffic:>10.4} {:>10}",
            config.gross_size()
        );
        curve.push((sub, miss, traffic));
        sub *= 2;
    }

    let latency = curve.last().expect("curve is nonempty");
    let bus = curve.first().expect("curve is nonempty");
    println!(
        "\nlatency-optimal (spare bus bandwidth): sub-block {} bytes",
        latency.0
    );
    println!("  miss {:.4}, traffic {:.4}", latency.1, latency.2);
    println!(
        "bus-optimal (bus-limited system):      sub-block {} bytes",
        bus.0
    );
    println!("  miss {:.4}, traffic {:.4}", bus.1, bus.2);
    println!(
        "\n(§4.2: the paper's b32 line at 1024 bytes spans miss 0.033/traffic\n\
         0.533 at 32-byte sub-blocks to miss 0.190/traffic 0.190 at 2 bytes.)"
    );
    Ok(())
}
