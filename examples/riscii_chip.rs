//! The RISC II instruction cache chip (§2.3): remote program counter and
//! code compaction in action.
//!
//! Run with: `cargo run --release --example riscii_chip`

use occache::riscii::{compact_profile, RiscIiCache};
use occache::workloads::{riscii_instruction_workload, ProgramGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = riscii_instruction_workload();
    let trace: Vec<_> = spec.generator(0).take(500_000).collect();

    let mut chip = RiscIiCache::paper_chip()?;
    for r in &trace {
        chip.fetch(r.address());
    }
    println!("RISC II chip: 512-byte direct-mapped store, 8-byte blocks");
    println!(
        "  miss ratio               : {:.4}  (paper: 0.148)",
        chip.miss_ratio()
    );
    println!(
        "  remote-PC accuracy       : {:.1}%  (paper: 89.9%)",
        chip.prediction_accuracy() * 100.0
    );
    println!(
        "  hit access-time reduction: {:.1}%  (paper: 42.2%)",
        chip.hit_time_reduction() * 100.0
    );

    // Recompile the same program with 40% half-word instructions.
    let compacted = compact_profile(spec.profile(), 0.4);
    let compact_trace: Vec<_> = ProgramGenerator::new(compacted, 0x52_01)
        .take(500_000)
        .collect();
    let mut compact_chip = RiscIiCache::paper_chip()?;
    for r in &compact_trace {
        compact_chip.fetch(r.address());
    }
    println!("\nwith code compaction (20% smaller code):");
    println!(
        "  miss ratio               : {:.4}",
        compact_chip.miss_ratio()
    );
    println!(
        "  improvement              : {:.1}%  (paper: 27.0%)",
        (1.0 - compact_chip.miss_ratio() / chip.miss_ratio()) * 100.0
    );
    Ok(())
}
