//! Quickstart: simulate the paper's headline cache on a synthetic PDP-11
//! workload and print the two metrics everything in the study revolves
//! around — miss ratio and traffic ratio.
//!
//! Run with: `cargo run --release --example quickstart`

use occache::core::{CacheConfig, SubBlockCache};
use occache::trace::TraceSource;
use occache::workloads::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 1024-byte (net) cache, 4-way set associative, with 16-byte blocks
    // split into 8-byte sub-blocks — the paper's "16,8 1024-byte" design.
    let config = CacheConfig::builder()
        .net_size(1024)
        .block_size(16)
        .sub_block_size(8)
        .word_size(2) // PDP-11: 2-byte data path
        .build()?;
    println!("cache: {config}");
    println!(
        "gross size (tags + valid bits + data): {} bytes",
        config.gross_size()
    );

    // The ED trace from the paper's Table 2 workload, as a synthetic model.
    let spec = WorkloadSpec::pdp11_ed();
    println!("workload: {} ({})", spec.name(), spec.description());

    let mut cache = SubBlockCache::new(config);
    let mut trace = spec.generator(0);
    for _ in 0..1_000_000 {
        let r = trace.next_ref().expect("generators are endless");
        cache.access(r.address(), r.kind());
    }

    let m = cache.metrics();
    println!(
        "references: {} (+ {} writes, excluded)",
        m.accesses(),
        m.write_accesses()
    );
    println!("miss ratio:    {:.4}", m.miss_ratio());
    println!("traffic ratio: {:.4}", m.traffic_ratio());
    println!(
        "(the paper reports 0.052 / 0.206 for this configuration on its\n\
         PDP-11 trace set; see EXPERIMENTS.md for the full comparison)"
    );
    Ok(())
}
