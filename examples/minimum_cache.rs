//! The "minimum cache" of §2.2: the smallest cache worth building.
//!
//! The paper proposes a ~190-byte-of-RAM design — 32 data words in 16
//! two-word blocks, loading only the requested word on a miss — and finds
//! that a 64-byte (net) cache with 2-word blocks and 1-word sub-blocks
//! cuts both memory references and bus traffic by about one third on the
//! 16-bit workloads (§5). This example verifies the RAM budget arithmetic
//! and measures that one-third claim per architecture.
//!
//! Run with: `cargo run --release --example minimum_cache`

use occache::core::{simulate, CacheConfig};
use occache::workloads::{Architecture, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // §2.2's area estimate: 16 blocks × [29 tag + 2 valid + 64 data bits].
    let proposal = CacheConfig::builder()
        .net_size(128) // 32 words × 4 bytes
        .block_size(8)
        .sub_block_size(4)
        .associativity(2)
        .word_size(4)
        .build()?;
    println!(
        "§2.2 minimum cache: {} data bytes -> {} bytes of RAM (paper: ~190)\n",
        proposal.net_size(),
        proposal.gross_size()
    );

    println!("64-byte minimum cache (block = 2 words, sub-block = 1 word):");
    println!(
        "{:<16} {:>8} {:>9} {:>8} {:>10}",
        "architecture", "miss", "traffic", "gross", "refs cut"
    );
    for arch in Architecture::ALL {
        let word = arch.word_size();
        let config = CacheConfig::builder()
            .net_size(64)
            .block_size(2 * word)
            .sub_block_size(word)
            .word_size(word)
            .build()?;
        let traces: Vec<Vec<_>> = WorkloadSpec::set_for(arch)
            .iter()
            .map(|spec| spec.generator(0).take(300_000).collect())
            .collect();
        let mut miss = 0.0;
        let mut traffic = 0.0;
        for trace in &traces {
            let m = simulate(config, trace.iter().copied(), 0);
            miss += m.miss_ratio();
            traffic += m.traffic_ratio();
        }
        let n = traces.len() as f64;
        miss /= n;
        traffic /= n;
        println!(
            "{:<16} {:>8.4} {:>9.4} {:>8} {:>9.0}%",
            arch.name(),
            miss,
            traffic,
            config.gross_size(),
            (1.0 - miss) * 100.0
        );
    }
    println!(
        "\n(§5: the minimum cache cuts references and traffic by about a third\n\
         on PDP-11, Z8000 and VAX-11 — but only ~16% of System/370 misses,\n\
         which is why the paper calls minimum caches unfit for that workload.)"
    );
    Ok(())
}
